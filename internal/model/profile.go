// Package model provides the diffusion-model variant registry used by
// the DiffServe reproduction: per-variant execution-latency profiles
// (batch size → seconds, taken from the paper's reported A100-80GB
// measurements) and the generative feature-space parameters calibrated
// so each variant's standalone FID matches the paper's figures.
package model

import (
	"fmt"
	"sort"
)

// Profile is an execution-latency profile: measured wall-clock seconds
// to execute one batch at each profiled batch size. Between profiled
// points the latency is linearly interpolated; beyond the largest
// profiled batch it is linearly extrapolated from the last segment.
type Profile struct {
	batchSizes []int
	latency    []float64
}

// NewProfile constructs a profile from parallel slices of batch sizes
// and batch execution latencies (seconds). Batch sizes must be
// strictly increasing and positive; latencies must be positive and
// non-decreasing.
func NewProfile(batchSizes []int, latency []float64) (*Profile, error) {
	if len(batchSizes) == 0 || len(batchSizes) != len(latency) {
		return nil, fmt.Errorf("model: profile needs equal-length non-empty slices")
	}
	for i := range batchSizes {
		if batchSizes[i] <= 0 {
			return nil, fmt.Errorf("model: batch size must be positive, got %d", batchSizes[i])
		}
		if latency[i] <= 0 {
			return nil, fmt.Errorf("model: latency must be positive, got %v", latency[i])
		}
		if i > 0 {
			if batchSizes[i] <= batchSizes[i-1] {
				return nil, fmt.Errorf("model: batch sizes must be strictly increasing")
			}
			if latency[i] < latency[i-1] {
				return nil, fmt.Errorf("model: latency must be non-decreasing in batch size")
			}
		}
	}
	return &Profile{
		batchSizes: append([]int(nil), batchSizes...),
		latency:    append([]float64(nil), latency...),
	}, nil
}

// LinearProfile builds a profile with the common affine batch-scaling
// law e(b) = base * (overhead + (1-overhead)*b), profiled at the given
// batch sizes. base is the batch-1 latency; overhead in [0, 1) is the
// fraction of batch-1 time that is fixed setup cost.
func LinearProfile(base, overhead float64, batchSizes []int) (*Profile, error) {
	if base <= 0 {
		return nil, fmt.Errorf("model: base latency must be positive")
	}
	if overhead < 0 || overhead >= 1 {
		return nil, fmt.Errorf("model: overhead must be in [0, 1)")
	}
	lat := make([]float64, len(batchSizes))
	for i, b := range batchSizes {
		lat[i] = base * (overhead + (1-overhead)*float64(b))
	}
	return NewProfile(batchSizes, lat)
}

// StandardBatchSizes is the batch-size grid profiled for every variant
// and searched by the resource allocator.
var StandardBatchSizes = []int{1, 2, 4, 8, 16, 32}

// BatchSizes returns the profiled batch sizes.
func (p *Profile) BatchSizes() []int {
	return append([]int(nil), p.batchSizes...)
}

// MaxBatch returns the largest profiled batch size.
func (p *Profile) MaxBatch() int { return p.batchSizes[len(p.batchSizes)-1] }

// Latency returns the execution latency (seconds) for a batch of size
// b, interpolating between profiled points. It panics if b <= 0.
func (p *Profile) Latency(b int) float64 {
	if b <= 0 {
		panic("model: batch size must be positive")
	}
	bs := p.batchSizes
	if b <= bs[0] {
		// Scale down proportionally below the smallest profiled batch.
		return p.latency[0] * float64(b) / float64(bs[0])
	}
	i := sort.SearchInts(bs, b)
	if i < len(bs) && bs[i] == b {
		return p.latency[i]
	}
	if i >= len(bs) {
		// Extrapolate from the final segment's marginal cost.
		n := len(bs)
		var slope float64
		if n >= 2 {
			slope = (p.latency[n-1] - p.latency[n-2]) / float64(bs[n-1]-bs[n-2])
		} else {
			slope = p.latency[0] / float64(bs[0])
		}
		return p.latency[n-1] + slope*float64(b-bs[n-1])
	}
	// Interpolate between points i-1 and i.
	lo, hi := bs[i-1], bs[i]
	frac := float64(b-lo) / float64(hi-lo)
	return p.latency[i-1] + frac*(p.latency[i]-p.latency[i-1])
}

// Throughput returns the steady-state throughput (queries per second)
// of one worker running batches of size b back-to-back.
func (p *Profile) Throughput(b int) float64 {
	return float64(b) / p.Latency(b)
}

// BestBatchWithin returns the largest profiled batch size whose
// execution latency does not exceed budget, and true; or 0 and false
// when even batch 1 exceeds the budget.
func (p *Profile) BestBatchWithin(budget float64) (int, bool) {
	best := 0
	for _, b := range p.batchSizes {
		if p.Latency(b) <= budget {
			best = b
		}
	}
	if best == 0 {
		return 0, false
	}
	return best, true
}
