package discriminator

import (
	"math"
	"testing"

	"diffserve/internal/imagespace"
	"diffserve/internal/model"
	"diffserve/internal/stats"
)

func testFixtures(t *testing.T) (*imagespace.Space, *model.Registry, []*imagespace.Query) {
	t.Helper()
	rng := stats.NewRNG(77)
	space, err := imagespace.NewSpace(imagespace.DefaultSpaceConfig(), rng.Stream("space"))
	if err != nil {
		t.Fatal(err)
	}
	return space, model.BuiltinRegistry(), space.SampleQueries(0, 2000)
}

func TestNewValidation(t *testing.T) {
	rng := stats.NewRNG(1)
	if _, err := New(Config{Arch: "bogus", Train: TrainGT}, rng); err == nil {
		t.Error("unknown arch should fail")
	}
	if _, err := New(Config{Arch: ArchResNet, Train: "bogus"}, rng); err == nil {
		t.Error("unknown train source should fail")
	}
	if _, err := New(Config{Arch: ArchResNet, Train: TrainFake}, rng); err == nil {
		t.Error("TrainFake without HeavyMeanArtifact should fail")
	}
	d, err := New(Config{Arch: ArchEfficientNet, Train: TrainGT}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "EfficientNet w GT" {
		t.Errorf("Name = %q", d.Name())
	}
}

func TestDiscriminatorLatenciesMatchPaper(t *testing.T) {
	rng := stats.NewRNG(2)
	// Paper §4.4: EfficientNet 10ms, ViT 5ms, ResNet 2ms on A100.
	cases := []struct {
		arch Arch
		want float64
	}{
		{ArchEfficientNet, 0.010},
		{ArchViT, 0.005},
		{ArchResNet, 0.002},
	}
	for _, c := range cases {
		d, err := New(Config{Arch: c.arch, Train: TrainGT}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if d.PerImageLatency() != c.want {
			t.Errorf("%s latency = %v, want %v", c.arch, d.PerImageLatency(), c.want)
		}
	}
}

func TestConfidenceInUnitInterval(t *testing.T) {
	space, reg, queries := testFixtures(t)
	rng := stats.NewRNG(3)
	light := reg.MustGet("sdturbo")
	scorers := []Scorer{
		mustNew(t, Config{Arch: ArchEfficientNet, Train: TrainGT}, rng),
		mustNew(t, Config{Arch: ArchResNet, Train: TrainGT}, rng),
		mustNew(t, Config{Arch: ArchViT, Train: TrainGT}, rng),
		mustNew(t, Config{Arch: ArchEfficientNet, Train: TrainFake, HeavyMeanArtifact: 4.3}, rng),
		NewPickScore(rng),
		NewClipScore(rng),
		NewRandom(rng),
		NewOracle(),
	}
	for _, s := range scorers {
		for _, q := range queries[:200] {
			img := space.GenerateDeterministic(q, light.Name, light.Gen)
			c := s.Confidence(q, img)
			if c < 0 || c > 1 || math.IsNaN(c) {
				t.Fatalf("%s confidence %v out of [0,1]", s.Name(), c)
			}
		}
	}
}

func mustNew(t *testing.T, cfg Config, rng *stats.RNG) *Discriminator {
	t.Helper()
	d, err := New(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfidenceDeterministicPerQuery(t *testing.T) {
	space, reg, queries := testFixtures(t)
	rng := stats.NewRNG(4)
	light := reg.MustGet("sdturbo")
	d := mustNew(t, Config{Arch: ArchEfficientNet, Train: TrainGT}, rng)
	q := queries[0]
	img := space.GenerateDeterministic(q, light.Name, light.Gen)
	a := d.Confidence(q, img)
	b := d.Confidence(q, img)
	if a != b {
		t.Errorf("confidence not deterministic: %v vs %v", a, b)
	}
}

func TestOracleMonotoneInArtifact(t *testing.T) {
	o := NewOracle()
	q := &imagespace.Query{ID: 0, Truth: make([]float64, 16)}
	prev := 2.0
	for a := 0.0; a < 10; a += 0.5 {
		c := o.Confidence(q, imagespace.Image{Artifact: a, Variant: "x"})
		if c >= prev {
			t.Fatalf("oracle confidence not strictly decreasing at artifact %v", a)
		}
		prev = c
	}
}

// confidenceArtifactCorrelation computes the Pearson correlation between
// confidence and (negated) artifact over light-model generations.
func confidenceArtifactCorrelation(space *imagespace.Space, light *model.Variant, queries []*imagespace.Query, s Scorer) float64 {
	var sa, sc, saa, scc, sac float64
	n := float64(len(queries))
	for _, q := range queries {
		img := space.GenerateDeterministic(q, light.Name, light.Gen)
		a := -img.Artifact
		c := s.Confidence(q, img)
		sa += a
		sc += c
		saa += a * a
		scc += c * c
		sac += a * c
	}
	cov := sac/n - (sa/n)*(sc/n)
	va := saa/n - (sa/n)*(sa/n)
	vc := scc/n - (sc/n)*(sc/n)
	return cov / math.Sqrt(va*vc)
}

func TestArchitectureRankingByCorrelation(t *testing.T) {
	// The paper's Fig 7 ordering: EfficientNet w GT best; ViT and
	// ResNet noisier; EfficientNet w Fake structurally biased. A
	// stronger scorer correlates better with true quality.
	space, reg, queries := testFixtures(t)
	rng := stats.NewRNG(5)
	light := reg.MustGet("sdturbo")
	heavyMean := space.MeanArtifact(reg.MustGet("sdv15").Gen)

	eff := mustNew(t, Config{Arch: ArchEfficientNet, Train: TrainGT}, rng)
	vit := mustNew(t, Config{Arch: ArchViT, Train: TrainGT}, rng)
	res := mustNew(t, Config{Arch: ArchResNet, Train: TrainGT}, rng)
	fake := mustNew(t, Config{Arch: ArchEfficientNet, Train: TrainFake, HeavyMeanArtifact: heavyMean}, rng)

	cEff := confidenceArtifactCorrelation(space, light, queries, eff)
	cVit := confidenceArtifactCorrelation(space, light, queries, vit)
	cRes := confidenceArtifactCorrelation(space, light, queries, res)
	cFake := confidenceArtifactCorrelation(space, light, queries, fake)

	if !(cEff > cVit && cVit > cRes) {
		t.Errorf("correlation ordering violated: eff %.3f, vit %.3f, res %.3f", cEff, cVit, cRes)
	}
	if cFake >= cEff {
		t.Errorf("fake-trained discriminator should be weaker: fake %.3f vs gt %.3f", cFake, cEff)
	}
	if cEff < 0.75 {
		t.Errorf("EfficientNet w GT correlation %.3f too weak to drive a cascade", cEff)
	}
}

func TestRandomScorerUniform(t *testing.T) {
	space, reg, queries := testFixtures(t)
	rng := stats.NewRNG(6)
	light := reg.MustGet("sdturbo")
	r := NewRandom(rng)
	var w stats.Welford
	for _, q := range queries {
		img := space.GenerateDeterministic(q, light.Name, light.Gen)
		w.Add(r.Confidence(q, img))
	}
	if math.Abs(w.Mean()-0.5) > 0.03 {
		t.Errorf("random confidence mean = %.3f, want ~0.5", w.Mean())
	}
	// Uniform variance is 1/12 ≈ 0.083.
	if math.Abs(w.Variance()-1.0/12) > 0.01 {
		t.Errorf("random confidence variance = %.4f, want ~0.083", w.Variance())
	}
	// Random confidence must not correlate with quality.
	if c := confidenceArtifactCorrelation(space, light, queries, r); math.Abs(c) > 0.08 {
		t.Errorf("random scorer correlates with quality: %.3f", c)
	}
}

func TestPickScoreDifferenceInformative(t *testing.T) {
	// Same-prompt PickScore differences (heavy minus light) should be
	// positive for 60-80% of queries: the heavy model is usually but
	// not always better (Fig 1b).
	space, reg, queries := testFixtures(t)
	rng := stats.NewRNG(7)
	light, heavy := reg.MustGet("sdturbo"), reg.MustGet("sdv15")
	ps := NewPickScore(rng)
	pos := 0
	for _, q := range queries {
		li := space.GenerateDeterministic(q, light.Name, light.Gen)
		hi := space.GenerateDeterministic(q, heavy.Name, heavy.Gen)
		if ps.Raw(q, hi)-ps.Raw(q, li) > 0 {
			pos++
		}
	}
	frac := float64(pos) / float64(len(queries))
	if frac < 0.55 || frac > 0.85 {
		t.Errorf("heavy-better fraction by PickScore = %.3f, want in [0.55, 0.85]", frac)
	}
}

func TestProxyMetricsPreferArtifactedLightImages(t *testing.T) {
	// The reward-hacking mechanism: among light generations, absolute
	// PickScore/ClipScore *increase* with artifact magnitude, which is
	// why thresholding them misroutes (Fig 1a).
	space, reg, queries := testFixtures(t)
	rng := stats.NewRNG(8)
	light := reg.MustGet("sdturbo")
	for _, s := range []Scorer{NewPickScore(rng), NewClipScore(rng)} {
		if c := confidenceArtifactCorrelation(space, light, queries, s); c > -0.02 {
			t.Errorf("%s correlation with quality = %.3f, want negative (reward hacking)", s.Name(), c)
		}
	}
}

func TestFakeTrainedPenalizesTooCleanImages(t *testing.T) {
	rng := stats.NewRNG(9)
	heavyMean := 4.3
	d := mustNew(t, Config{Arch: ArchEfficientNet, Train: TrainFake, HeavyMeanArtifact: heavyMean}, rng)
	q := &imagespace.Query{ID: 0, Truth: make([]float64, 16)}
	// Average over noise realizations by scoring distinct query IDs.
	avgConf := func(artifact float64) float64 {
		sum := 0.0
		const n = 400
		for i := 0; i < n; i++ {
			qq := &imagespace.Query{ID: i, Truth: q.Truth}
			sum += d.Confidence(qq, imagespace.Image{Artifact: artifact, Variant: "x"})
		}
		return sum / n
	}
	atHeavy := avgConf(heavyMean)
	veryClean := avgConf(0.3)
	veryBad := avgConf(8)
	if !(atHeavy > veryClean && atHeavy > veryBad) {
		t.Errorf("fake-trained discriminator should peak near heavy artifact level: clean %.3f, atHeavy %.3f, bad %.3f",
			veryClean, atHeavy, veryBad)
	}
}

func TestGTConfidenceDecreasesWithArtifact(t *testing.T) {
	rng := stats.NewRNG(10)
	d := mustNew(t, Config{Arch: ArchEfficientNet, Train: TrainGT}, rng)
	q := &imagespace.Query{ID: 0, Truth: make([]float64, 16)}
	avgConf := func(artifact float64) float64 {
		sum := 0.0
		const n = 400
		for i := 0; i < n; i++ {
			qq := &imagespace.Query{ID: i, Truth: q.Truth}
			sum += d.Confidence(qq, imagespace.Image{Artifact: artifact, Variant: "x"})
		}
		return sum / n
	}
	if !(avgConf(2) > avgConf(4.2) && avgConf(4.2) > avgConf(7)) {
		t.Error("GT-trained confidence should decrease with artifact magnitude")
	}
}
