// Package discriminator implements the quality scorers that drive
// diffusion-model cascading: the paper's trained binary real-vs-fake
// discriminators (EfficientNet-V2, ResNet-34, ViT-B/16, each trainable
// against ground-truth or heavy-model "real" samples) plus the
// PickScore, CLIPScore, and Random cascading baselines of Fig 1a.
//
// A trained discriminator observes a generated image's true artifact
// magnitude through architecture-specific observation noise and emits a
// softmax confidence that the image is "real":
//
//	conf = sigmoid(steepness · (midpoint − observed_artifact))
//
// The EfficientNet-with-fake-labels variant, trained with heavyweight
// generations as the "real" class, instead learns the distance to the
// heavy model's output distribution — it penalizes images that are
// *too clean* as well as ones that are too artifacted, which is the
// mechanism behind its inferior routing in Fig 7.
//
// PickScore and CLIPScore are modeled as prompt-image metrics dominated
// by content typicality rather than artifact magnitude. Routing on
// them biases the set of served light images by prompt content, which
// shrinks served-output diversity and explains the paper's surprising
// Fig 1a result that both underperform a Random classifier.
package discriminator

import (
	"fmt"
	"math"
	"sync"

	"diffserve/internal/imagespace"
	"diffserve/internal/stats"
)

// obsCache memoizes each scorer's per-(variant, query) observation
// draw. Scores are documented to be deterministic per (scorer, query,
// image-variant), so the draw — the only stochastic input — is
// computed once per pair with an allocation-free stream derivation
// and replayed from the cache afterwards. The cache is synchronized
// so concurrent simulation runs can share one scorer.
type obsCache struct {
	mu      sync.Mutex
	vals    map[obsKey]float64
	scratch *stats.RNG
}

type obsKey struct {
	variant string
	id      int
}

func newObsCache() *obsCache {
	return &obsCache{vals: make(map[obsKey]float64), scratch: stats.NewRNG(0)}
}

// sample returns draw applied to the stream
// base.Stream("v:"+variant).StreamN("q", id), memoized.
func (c *obsCache) sample(base *stats.RNG, variant string, id int, draw func(*stats.RNG) float64) float64 {
	k := obsKey{variant: variant, id: id}
	c.mu.Lock()
	v, ok := c.vals[k]
	if !ok {
		c.scratch.Reseed(stats.StreamNSeedFrom(base.StreamSeed2("v:", variant), "q", id))
		v = draw(c.scratch)
		// Bounded like the imagespace memos: past the cap, compute
		// without storing so long-lived processes stay O(1).
		if len(c.vals) < maxObsEntries {
			c.vals[k] = v
		}
	}
	c.mu.Unlock()
	return v
}

// maxObsEntries bounds each scorer's observation memo.
const maxObsEntries = 1 << 20

// Scorer assigns a confidence score in [0, 1] to a generated image;
// higher means more likely to meet the quality bar. A cascade returns
// the light image iff its confidence is at least the threshold.
type Scorer interface {
	// Name identifies the scorer in reports.
	Name() string
	// Confidence scores an image generated for query q. Scores are
	// deterministic per (scorer, query, image-variant).
	Confidence(q *imagespace.Query, img imagespace.Image) float64
	// PerImageLatency is the scoring cost in seconds per image.
	PerImageLatency() float64
}

// Arch identifies a discriminator backbone architecture.
type Arch string

// Discriminator backbones evaluated in the paper (§4.4), with their
// reported per-image A100 latencies.
const (
	ArchEfficientNet Arch = "efficientnet-v2"
	ArchResNet       Arch = "resnet-34"
	ArchViT          Arch = "vit-b16"
)

// TrainSource identifies what the discriminator's "real" class was
// during training.
type TrainSource string

const (
	// TrainGT trains against ground-truth dataset images (the paper's
	// final configuration).
	TrainGT TrainSource = "gt"
	// TrainFake trains against heavyweight-model generations labeled
	// as "real".
	TrainFake TrainSource = "fake"
)

// archTraits captures the per-architecture observation quality and
// runtime cost. A stronger backbone estimates the artifact magnitude
// with less noise.
type archTraits struct {
	obsNoise float64
	latency  float64
}

var archs = map[Arch]archTraits{
	ArchEfficientNet: {obsNoise: 0.45, latency: 0.010},
	ArchViT:          {obsNoise: 1.00, latency: 0.005},
	ArchResNet:       {obsNoise: 1.70, latency: 0.002},
}

// Config parameterizes a trained discriminator.
type Config struct {
	Arch  Arch
	Train TrainSource
	// Midpoint is the artifact magnitude at which confidence is 0.5.
	// Zero means use the calibrated default.
	Midpoint float64
	// Steepness is the logistic slope. Zero means use the default.
	Steepness float64
	// HeavyMeanArtifact is required for TrainFake: the mean artifact
	// magnitude of the heavyweight model it was trained against.
	HeavyMeanArtifact float64
}

// Default calibration: the confidence midpoint sits at the typical
// artifact magnitude of a heavyweight generation, so thresholds in
// (0, 1) sweep the full routing range.
const (
	defaultMidpoint  = 4.2
	defaultSteepness = 1.1
)

// Discriminator is a trained real-vs-fake classifier repurposed as a
// cascade confidence estimator.
type Discriminator struct {
	cfg    Config
	traits archTraits
	rng    *stats.RNG
	obs    *obsCache
}

// New constructs a discriminator. rng seeds the observation-noise
// streams; scores remain deterministic per (query, image variant).
func New(cfg Config, rng *stats.RNG) (*Discriminator, error) {
	traits, ok := archs[cfg.Arch]
	if !ok {
		return nil, fmt.Errorf("discriminator: unknown architecture %q", cfg.Arch)
	}
	if cfg.Train != TrainGT && cfg.Train != TrainFake {
		return nil, fmt.Errorf("discriminator: unknown train source %q", cfg.Train)
	}
	if cfg.Train == TrainFake && cfg.HeavyMeanArtifact <= 0 {
		return nil, fmt.Errorf("discriminator: TrainFake requires HeavyMeanArtifact > 0")
	}
	if cfg.Midpoint == 0 {
		cfg.Midpoint = defaultMidpoint
	}
	if cfg.Steepness == 0 {
		cfg.Steepness = defaultSteepness
	}
	if cfg.Train == TrainFake {
		// Training against generated "real" samples yields noisier
		// decision boundaries on top of the structural bias.
		traits.obsNoise *= 1.4
	}
	return &Discriminator{
		cfg: cfg, traits: traits,
		rng: rng.Stream("disc:" + string(cfg.Arch) + ":" + string(cfg.Train)),
		obs: newObsCache(),
	}, nil
}

// Name implements Scorer.
func (d *Discriminator) Name() string {
	label := map[TrainSource]string{TrainGT: "w GT", TrainFake: "w Fake"}[d.cfg.Train]
	arch := map[Arch]string{
		ArchEfficientNet: "EfficientNet",
		ArchResNet:       "ResNet",
		ArchViT:          "ViT",
	}[d.cfg.Arch]
	return arch + " " + label
}

// PerImageLatency implements Scorer.
func (d *Discriminator) PerImageLatency() float64 { return d.traits.latency }

// Confidence implements Scorer.
func (d *Discriminator) Confidence(q *imagespace.Query, img imagespace.Image) float64 {
	noise := d.obs.sample(d.rng, img.Variant, q.ID, func(r *stats.RNG) float64 {
		return r.Normal(0, d.traits.obsNoise)
	})
	observed := img.Artifact + noise
	var score float64
	switch d.cfg.Train {
	case TrainGT:
		// Distance from the real-image manifold: monotone in artifact.
		score = d.cfg.Steepness * (d.cfg.Midpoint - observed)
	case TrainFake:
		// Distance from the heavy model's output distribution: images
		// far from typical heavy artifact levels — in either direction —
		// look "fake" to this discriminator.
		dev := math.Abs(observed - d.cfg.HeavyMeanArtifact)
		score = d.cfg.Steepness * (d.cfg.Midpoint - d.cfg.HeavyMeanArtifact + 1.2 - dev)
	}
	return sigmoid(score)
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// PickScore models the PickScore prompt-image preference metric.
//
// The score is computed from the *observable* image: a CLIP-style
// alignment reading of the image's projection onto the alignment axis
// (the first feature dimension) plus a weak, noisy estimate of true
// visual quality. Because the generative-artifact direction of
// distilled diffusion models has a positive component along the
// alignment axis, artifacts *increase* the alignment reading — the
// well-documented CLIP "reward hacking" effect, where the saturated,
// over-sharpened look of distilled-model outputs reads as better
// prompt alignment.
//
// Consequences, both matching the paper:
//   - Same-prompt score differences remain (noisily) informative, which
//     is why Fig 1b can use PickScore differences to demonstrate the
//     existence of easy queries.
//   - Thresholding absolute scores across prompts prefers *more*
//     artifacted light images, so PickScore routing underperforms even
//     a Random classifier (Fig 1a): scores are "incomparable between
//     different prompt-image pairs".
type PickScore struct {
	rng *stats.RNG
	obs *obsCache
	// AlignmentWeight scales the image's alignment-axis projection;
	// QualityWeight scales the (negated) true-quality estimate; Noise
	// is per-measurement observation noise; Center recenters the
	// squashed confidence near 0.5 for the light-model population.
	AlignmentWeight, QualityWeight, Noise, Center float64
}

// NewPickScore returns a PickScore metric with calibrated weights.
func NewPickScore(rng *stats.RNG) *PickScore {
	return &PickScore{
		rng: rng.Stream("pickscore"), obs: newObsCache(),
		AlignmentWeight: 0.60, QualityWeight: 0.25, Noise: 0.30, Center: 1.4,
	}
}

// Name implements Scorer.
func (p *PickScore) Name() string { return "PickScore" }

// PerImageLatency implements Scorer. PickScore runs a CLIP-H backbone.
func (p *PickScore) PerImageLatency() float64 { return 0.012 }

// Raw returns the unnormalized PickScore, used for Fig 1b score-
// difference CDFs.
func (p *PickScore) Raw(q *imagespace.Query, img imagespace.Image) float64 {
	noise := p.obs.sample(p.rng, img.Variant, q.ID, func(r *stats.RNG) float64 {
		return r.Normal(0, p.Noise)
	})
	return p.AlignmentWeight*img.Features[0] + p.QualityWeight*(-img.Artifact) + noise
}

// Confidence implements Scorer.
func (p *PickScore) Confidence(q *imagespace.Query, img imagespace.Image) float64 {
	return sigmoid(p.Raw(q, img) - p.Center)
}

// ClipScore models the CLIPScore prompt-image alignment metric: the
// same reward-hacked alignment reading as PickScore but with an even
// weaker true-quality component — per the paper, CLIP scores of
// different model variants are very close.
type ClipScore struct {
	rng                                           *stats.RNG
	obs                                           *obsCache
	AlignmentWeight, QualityWeight, Noise, Center float64
}

// NewClipScore returns a CLIPScore metric with calibrated weights.
func NewClipScore(rng *stats.RNG) *ClipScore {
	return &ClipScore{
		rng: rng.Stream("clipscore"), obs: newObsCache(),
		AlignmentWeight: 0.65, QualityWeight: 0.08, Noise: 0.35, Center: 2.4,
	}
}

// Name implements Scorer.
func (c *ClipScore) Name() string { return "ClipScore" }

// PerImageLatency implements Scorer.
func (c *ClipScore) PerImageLatency() float64 { return 0.008 }

// Raw returns the unnormalized CLIPScore.
func (c *ClipScore) Raw(q *imagespace.Query, img imagespace.Image) float64 {
	noise := c.obs.sample(c.rng, img.Variant, q.ID, func(r *stats.RNG) float64 {
		return r.Normal(0, c.Noise)
	})
	return c.AlignmentWeight*img.Features[0] + c.QualityWeight*(-img.Artifact) + noise
}

// Confidence implements Scorer.
func (c *ClipScore) Confidence(q *imagespace.Query, img imagespace.Image) float64 {
	return sigmoid(c.Raw(q, img) - c.Center)
}

// Random is the random-classifier baseline: confidence is an
// independent uniform draw per query, so a threshold t defers a
// fraction t of queries regardless of content.
type Random struct {
	rng *stats.RNG
	obs *obsCache
}

// NewRandom returns the random baseline scorer.
func NewRandom(rng *stats.RNG) *Random {
	return &Random{rng: rng.Stream("random-scorer"), obs: newObsCache()}
}

// Name implements Scorer.
func (r *Random) Name() string { return "Random" }

// PerImageLatency implements Scorer.
func (r *Random) PerImageLatency() float64 { return 0 }

// Confidence implements Scorer.
func (r *Random) Confidence(q *imagespace.Query, img imagespace.Image) float64 {
	return r.obs.sample(r.rng, img.Variant, q.ID, func(rr *stats.RNG) float64 {
		return rr.Float64()
	})
}

// Oracle scores with the ground-truth artifact magnitude and no noise —
// an upper bound used in tests and ablations, never by the system.
type Oracle struct {
	Midpoint, Steepness float64
}

// NewOracle returns an oracle scorer with the default calibration.
func NewOracle() *Oracle {
	return &Oracle{Midpoint: defaultMidpoint, Steepness: defaultSteepness}
}

// Name implements Scorer.
func (o *Oracle) Name() string { return "Oracle" }

// PerImageLatency implements Scorer.
func (o *Oracle) PerImageLatency() float64 { return 0 }

// Confidence implements Scorer.
func (o *Oracle) Confidence(q *imagespace.Query, img imagespace.Image) float64 {
	return sigmoid(o.Steepness * (o.Midpoint - img.Artifact))
}
