package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"diffserve/internal/cascade"
	"diffserve/internal/discriminator"
	"diffserve/internal/fid"
	"diffserve/internal/imagespace"
	"diffserve/internal/model"
	"diffserve/internal/stats"
)

// Fig1aPoint is one (threshold, latency, FID) operating point of a
// cascade under a scorer.
type Fig1aPoint struct {
	Scorer        string
	DeferFraction float64
	Threshold     float64
	AvgLatency    float64
	FID           float64
}

// VariantPoint is one independent model variant in the Fig 1a scatter.
type VariantPoint struct {
	Variant string
	Latency float64
	FID     float64
}

// Fig1aResult reproduces Fig 1a: cascade quality-latency curves for
// the Discriminator, Random, PickScore, and ClipScore scorers on the
// (SD-Turbo, SDv1.5) and (SDXS, SDv1.5) pairs, plus the standalone
// variant scatter.
type Fig1aResult struct {
	// Curves maps "light+heavy" to scorer curves.
	Curves map[string]map[string][]Fig1aPoint
	// Variants is the standalone scatter.
	Variants []VariantPoint
}

// Fig1a regenerates Figure 1a.
func Fig1a(cfg Config) (*Fig1aResult, error) {
	cfg = cfg.withDefaults()
	rng := stats.NewRNG(cfg.Seed)
	space, err := imagespace.NewSpace(imagespace.DefaultSpaceConfig(), rng.Stream("space"))
	if err != nil {
		return nil, err
	}
	reg := model.BuiltinRegistry()
	queries, ref, err := offlineSet(space, cfg.Queries)
	if err != nil {
		return nil, err
	}

	fracs := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	if cfg.Short {
		fracs = []float64{0, 0.3, 0.6, 1.0}
	}

	out := &Fig1aResult{Curves: map[string]map[string][]Fig1aPoint{}}
	type curveJob struct {
		pairKey      string
		light, heavy *model.Variant
		scorer       discriminator.Scorer
	}
	var jobs []curveJob
	for _, pairSpec := range [][2]string{{"sdturbo", "sdv15"}, {"sdxs", "sdv15"}} {
		light, heavy := reg.MustGet(pairSpec[0]), reg.MustGet(pairSpec[1])
		pairKey := pairSpec[0] + "+" + pairSpec[1]
		out.Curves[pairKey] = map[string][]Fig1aPoint{}

		effnet, err := discriminator.New(discriminator.Config{
			Arch: discriminator.ArchEfficientNet, Train: discriminator.TrainGT,
		}, rng.Stream("disc:"+pairKey))
		if err != nil {
			return nil, err
		}
		scorers := []discriminator.Scorer{
			effnet,
			discriminator.NewRandom(rng.Stream("rand:" + pairKey)),
			discriminator.NewPickScore(rng.Stream("pick:" + pairKey)),
			discriminator.NewClipScore(rng.Stream("clip:" + pairKey)),
		}
		for _, s := range scorers {
			jobs = append(jobs, curveJob{pairKey: pairKey, light: light, heavy: heavy, scorer: s})
		}
	}
	curves, err := fanOut(cfg.Parallelism, len(jobs), func(i int) ([]Fig1aPoint, error) {
		j := jobs[i]
		return cascadeCurve(space, j.light, j.heavy, j.scorer, queries, ref, fracs)
	})
	if err != nil {
		return nil, err
	}
	for i, curve := range curves {
		out.Curves[jobs[i].pairKey][jobs[i].scorer.Name()] = curve
	}

	// Standalone variant scatter.
	names := reg.Names()
	variants, err := fanOut(cfg.Parallelism, len(names), func(i int) (VariantPoint, error) {
		v := reg.MustGet(names[i])
		feats := make([][]float64, len(queries))
		for k, q := range queries {
			feats[k] = space.GenerateDeterministic(q, v.Name, v.Gen).Features
		}
		score, err := ref.Score(feats)
		if err != nil {
			return VariantPoint{}, err
		}
		return VariantPoint{Variant: v.DisplayName, Latency: v.BaseLatency(), FID: score}, nil
	})
	if err != nil {
		return nil, err
	}
	out.Variants = variants
	sort.Slice(out.Variants, func(i, j int) bool { return out.Variants[i].Latency < out.Variants[j].Latency })
	return out, nil
}

// cascadeCurve evaluates one scorer's FID/latency curve across
// deferral fractions at batch size 1 (as in Fig 1a).
func cascadeCurve(space *imagespace.Space, light, heavy *model.Variant, s discriminator.Scorer, queries []*imagespace.Query, ref *fid.Reference, fracs []float64) ([]Fig1aPoint, error) {
	c, err := cascade.New(space, light, heavy, s)
	if err != nil {
		return nil, err
	}
	prof, err := cascade.ProfileDeferral(c, queries)
	if err != nil {
		return nil, err
	}
	var out []Fig1aPoint
	for _, f := range fracs {
		thr := prof.ThresholdForFraction(f)
		feats := make([][]float64, len(queries))
		latency := 0.0
		for i, q := range queries {
			o := c.Process(q, thr)
			feats[i] = o.Served.Features
			latency += o.Latency
		}
		score, err := ref.Score(feats)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig1aPoint{
			Scorer: s.Name(), DeferFraction: f, Threshold: thr,
			AvgLatency: latency / float64(len(queries)), FID: score,
		})
	}
	return out, nil
}

// Render writes the Fig 1a tables.
func (r *Fig1aResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 1a — FID vs. average inference latency (batch 1)")
	for pair, curves := range r.Curves {
		fmt.Fprintf(w, "\npair %s\n", pair)
		names := make([]string, 0, len(curves))
		for n := range curves {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "  %-18s", name)
			for _, p := range curves[name] {
				fmt.Fprintf(w, "  (%.2fs, %5.2f)", p.AvgLatency, p.FID)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "\nindependent variants (latency s, FID):")
	for _, v := range r.Variants {
		fmt.Fprintf(w, "  %-18s %6.3f %6.2f\n", v.Variant, v.Latency, v.FID)
	}
}

// Fig1bResult reproduces Fig 1b: the distribution of per-query quality
// differences between light and heavy generations, measured by
// PickScore (top panels) and discriminator confidence (bottom panels).
type Fig1bResult struct {
	// Pairs maps "light+heavy" to the CDF samples.
	Pairs map[string]*Fig1bPair
}

// Fig1bPair holds the difference samples for one cascade pair.
// Differences are heavy minus light, so negative values mean the light
// model's generation scored better.
type Fig1bPair struct {
	PickScoreDiff  []float64
	ConfidenceDiff []float64
	// EasyFraction is the ground-truth fraction of queries where the
	// light generation is at least as good (paper: 20-40%).
	EasyFraction float64
}

// Fig1b regenerates Figure 1b.
func Fig1b(cfg Config) (*Fig1bResult, error) {
	cfg = cfg.withDefaults()
	rng := stats.NewRNG(cfg.Seed)
	space, err := imagespace.NewSpace(imagespace.DefaultSpaceConfig(), rng.Stream("space"))
	if err != nil {
		return nil, err
	}
	reg := model.BuiltinRegistry()
	queries := space.SampleQueries(0, cfg.Queries)

	out := &Fig1bResult{Pairs: map[string]*Fig1bPair{}}
	for _, pairSpec := range [][2]string{{"sdturbo", "sdv15"}, {"sdxs", "sdv15"}} {
		light, heavy := reg.MustGet(pairSpec[0]), reg.MustGet(pairSpec[1])
		pairKey := pairSpec[0] + "+" + pairSpec[1]
		ps := discriminator.NewPickScore(rng.Stream("pick:" + pairKey))
		effnet, err := discriminator.New(discriminator.Config{
			Arch: discriminator.ArchEfficientNet, Train: discriminator.TrainGT,
		}, rng.Stream("disc:"+pairKey))
		if err != nil {
			return nil, err
		}
		pair := &Fig1bPair{}
		easy := 0
		for _, q := range queries {
			li := space.GenerateDeterministic(q, light.Name, light.Gen)
			hi := space.GenerateDeterministic(q, heavy.Name, heavy.Gen)
			pair.PickScoreDiff = append(pair.PickScoreDiff, ps.Raw(q, hi)-ps.Raw(q, li))
			pair.ConfidenceDiff = append(pair.ConfidenceDiff, effnet.Confidence(q, hi)-effnet.Confidence(q, li))
			if li.Artifact <= hi.Artifact {
				easy++
			}
		}
		pair.EasyFraction = float64(easy) / float64(len(queries))
		out.Pairs[pairKey] = pair
	}
	return out, nil
}

// Render writes the Fig 1b CDF summaries.
func (r *Fig1bResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 1b — CDF of quality difference (heavy - light); negative = light better")
	for pair, p := range r.Pairs {
		psCDF := stats.NewCDF(p.PickScoreDiff)
		cfCDF := stats.NewCDF(p.ConfidenceDiff)
		fmt.Fprintf(w, "\npair %s (ground-truth easy fraction %.2f)\n", pair, p.EasyFraction)
		fmt.Fprintf(w, "  PickScore diff:  CDF(0)=%.2f  p10=%+.2f  median=%+.2f  p90=%+.2f\n",
			psCDF.At(0), psCDF.InverseAt(0.1), psCDF.InverseAt(0.5), psCDF.InverseAt(0.9))
		fmt.Fprintf(w, "  Confidence diff: CDF(0)=%.2f  p10=%+.2f  median=%+.2f  p90=%+.2f\n",
			cfCDF.At(0), cfCDF.InverseAt(0.1), cfCDF.InverseAt(0.5), cfCDF.InverseAt(0.9))
	}
}

// Fig1cPoint is one configuration's (throughput, FID) outcome.
type Fig1cPoint struct {
	ThroughputQPS float64
	FID           float64
	DeferFraction float64
	LightBatch    int
	HeavyBatch    int
	LightWorkers  int
	HeavyWorkers  int
	Pareto        bool
}

// Fig1cResult reproduces Fig 1c: the FID-vs-serving-throughput space
// of cascade configurations on 10 workers, with the Pareto frontier
// marked.
type Fig1cResult struct {
	Points   []Fig1cPoint
	Frontier []Fig1cPoint
	Configs  int
}

// Fig1c regenerates Figure 1c by enumerating (threshold, batch sizes,
// placement) configurations of the SD-Turbo/SDv1.5 cascade on 10
// workers.
func Fig1c(cfg Config) (*Fig1cResult, error) {
	cfg = cfg.withDefaults()
	rng := stats.NewRNG(cfg.Seed)
	space, err := imagespace.NewSpace(imagespace.DefaultSpaceConfig(), rng.Stream("space"))
	if err != nil {
		return nil, err
	}
	reg := model.BuiltinRegistry()
	light, heavy := reg.MustGet("sdturbo"), reg.MustGet("sdv15")
	queries, ref, err := offlineSet(space, cfg.Queries)
	if err != nil {
		return nil, err
	}
	effnet, err := discriminator.New(discriminator.Config{
		Arch: discriminator.ArchEfficientNet, Train: discriminator.TrainGT,
	}, rng.Stream("disc"))
	if err != nil {
		return nil, err
	}
	casc, err := cascade.New(space, light, heavy, effnet)
	if err != nil {
		return nil, err
	}
	prof, err := cascade.ProfileDeferral(casc, queries)
	if err != nil {
		return nil, err
	}

	const workers = 10
	fracGrid := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	if cfg.Short {
		fracGrid = []float64{0, 0.3, 0.6}
	}

	// Precompute the FID for each deferral fraction (it depends only
	// on the threshold, not on batches/placement). Sweep points are
	// independent, so they fan out across the worker pool.
	fidVals, err := fanOut(cfg.Parallelism, len(fracGrid), func(i int) (float64, error) {
		thr := prof.ThresholdForFraction(fracGrid[i])
		feats := make([][]float64, len(queries))
		for k, q := range queries {
			feats[k] = casc.Process(q, thr).Served.Features
		}
		return ref.Score(feats)
	})
	if err != nil {
		return nil, err
	}
	fidAt := map[float64]float64{}
	for i, f := range fracGrid {
		fidAt[f] = fidVals[i]
	}

	out := &Fig1cResult{}
	discLat := effnet.PerImageLatency()
	for _, f := range fracGrid {
		for _, b1 := range model.StandardBatchSizes {
			for _, b2 := range model.StandardBatchSizes {
				for x1 := 1; x1 < workers; x1++ {
					x2 := workers - x1
					lightTput := float64(x1) * float64(b1) / (light.Latency.Latency(b1) + float64(b1)*discLat)
					sysTput := lightTput
					if f > 0 {
						heavyTput := float64(x2) * heavy.Latency.Throughput(b2)
						sysTput = math.Min(lightTput, heavyTput/f)
					}
					out.Points = append(out.Points, Fig1cPoint{
						ThroughputQPS: sysTput, FID: fidAt[f], DeferFraction: f,
						LightBatch: b1, HeavyBatch: b2, LightWorkers: x1, HeavyWorkers: x2,
					})
				}
			}
		}
	}
	out.Configs = len(out.Points)

	// Pareto frontier: maximal throughput for minimal FID.
	sorted := append([]Fig1cPoint(nil), out.Points...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].ThroughputQPS != sorted[j].ThroughputQPS {
			return sorted[i].ThroughputQPS > sorted[j].ThroughputQPS
		}
		return sorted[i].FID < sorted[j].FID
	})
	bestFID := math.Inf(1)
	for _, p := range sorted {
		if p.FID < bestFID-1e-9 {
			bestFID = p.FID
			p.Pareto = true
			out.Frontier = append(out.Frontier, p)
		}
	}
	sort.Slice(out.Frontier, func(i, j int) bool {
		return out.Frontier[i].ThroughputQPS < out.Frontier[j].ThroughputQPS
	})
	return out, nil
}

// Render writes the Fig 1c frontier.
func (r *Fig1cResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 1c — FID vs. serving throughput (%d configurations, 10 workers)\n", r.Configs)
	fmt.Fprintln(w, "Pareto frontier (throughput QPS, FID, defer fraction, light x batch, heavy x batch):")
	for _, p := range r.Frontier {
		fmt.Fprintf(w, "  %7.2f  %6.2f  f=%.1f  %dx b%-2d  %dx b%-2d\n",
			p.ThroughputQPS, p.FID, p.DeferFraction, p.LightWorkers, p.LightBatch, p.HeavyWorkers, p.HeavyBatch)
	}
}
