package experiments

import "diffserve/internal/parallel"

// fanOut fans n index-ordered jobs across up to `workers` goroutines;
// see parallel.Map (the exported home of the pool) for the
// determinism and fail-fast contract.
func fanOut[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return parallel.Map(workers, n, fn)
}
