package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"diffserve/internal/allocator"
	"diffserve/internal/baselines"
	"diffserve/internal/cascade"
	"diffserve/internal/cluster"
	"diffserve/internal/controller"
	"diffserve/internal/discriminator"
	"diffserve/internal/imagespace"
	"diffserve/internal/loadbalancer"
	"diffserve/internal/model"
	"diffserve/internal/stats"
	"diffserve/internal/trace"
)

// Fig7Result reproduces Fig 7: the discriminator-design ablation
// (ResNet w GT, ViT w GT, EfficientNet w Fake, EfficientNet w GT) as
// FID-vs-latency curves on the SD-Turbo and SDXS cascades.
type Fig7Result struct {
	// Curves maps "light+heavy" to per-design curves.
	Curves map[string]map[string][]Fig1aPoint
}

// Fig7 regenerates Figure 7.
func Fig7(cfg Config) (*Fig7Result, error) {
	cfg = cfg.withDefaults()
	rng := stats.NewRNG(cfg.Seed)
	space, err := imagespace.NewSpace(imagespace.DefaultSpaceConfig(), rng.Stream("space"))
	if err != nil {
		return nil, err
	}
	reg := model.BuiltinRegistry()
	queries, ref, err := offlineSet(space, cfg.Queries)
	if err != nil {
		return nil, err
	}

	fracs := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	if cfg.Short {
		fracs = []float64{0, 0.3, 0.6, 1.0}
	}

	out := &Fig7Result{Curves: map[string]map[string][]Fig1aPoint{}}
	type curveJob struct {
		pairKey      string
		light, heavy *model.Variant
		disc         *discriminator.Discriminator
	}
	var jobs []curveJob
	for _, pairSpec := range [][2]string{{"sdturbo", "sdv15"}, {"sdxs", "sdv15"}} {
		light, heavy := reg.MustGet(pairSpec[0]), reg.MustGet(pairSpec[1])
		pairKey := pairSpec[0] + "+" + pairSpec[1]
		heavyMean := space.MeanArtifact(heavy.Gen)
		configs := []discriminator.Config{
			{Arch: discriminator.ArchResNet, Train: discriminator.TrainGT},
			{Arch: discriminator.ArchViT, Train: discriminator.TrainGT},
			{Arch: discriminator.ArchEfficientNet, Train: discriminator.TrainFake, HeavyMeanArtifact: heavyMean},
			{Arch: discriminator.ArchEfficientNet, Train: discriminator.TrainGT},
		}
		out.Curves[pairKey] = map[string][]Fig1aPoint{}
		for _, dc := range configs {
			d, err := discriminator.New(dc, rng.Stream("disc:"+pairKey+string(dc.Arch)+string(dc.Train)))
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, curveJob{pairKey: pairKey, light: light, heavy: heavy, disc: d})
		}
	}
	curves, err := fanOut(cfg.Parallelism, len(jobs), func(i int) ([]Fig1aPoint, error) {
		j := jobs[i]
		return cascadeCurve(space, j.light, j.heavy, j.disc, queries, ref, fracs)
	})
	if err != nil {
		return nil, err
	}
	for i, curve := range curves {
		out.Curves[jobs[i].pairKey][jobs[i].disc.Name()] = curve
	}
	return out, nil
}

// Render writes the Fig 7 tables.
func (r *Fig7Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 7 — discriminator design comparison (FID at matched latency)")
	for pair, curves := range r.Curves {
		fmt.Fprintf(w, "\npair %s\n", pair)
		names := make([]string, 0, len(curves))
		for n := range curves {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "  %-20s", name)
			for _, p := range curves[name] {
				fmt.Fprintf(w, "  (%.2fs, %5.2f)", p.AvgLatency, p.FID)
			}
			fmt.Fprintln(w)
		}
	}
}

// Fig8Result reproduces Fig 8: the resource-allocation ablation
// (DiffServe vs. static threshold vs. no queuing model vs. AIMD
// batching) on the dynamic trace.
type Fig8Result struct {
	Summaries []Summary
	Timelines map[string][]TimelineBucket
}

// Fig8 regenerates Figure 8.
func Fig8(cfg Config) (*Fig8Result, error) {
	cfg = cfg.withDefaults()
	tr, err := azureTrace(cfg, 4, 32)
	if err != nil {
		return nil, err
	}
	env, err := baselines.NewEnv("cascade1", cfg.Seed+17, minInt(cfg.Queries, 2000))
	if err != nil {
		return nil, err
	}
	out := &Fig8Result{Timelines: map[string][]TimelineBucket{}}
	apps := baselines.Ablations()
	runs, err := fanOut(cfg.Parallelism, len(apps), func(i int) (approachRun, error) {
		sum, buckets, err := runOnTrace(env, apps[i], tr, baselines.Options{Workers: cfg.Workers})
		return approachRun{sum: sum, buckets: buckets}, err
	})
	if err != nil {
		return nil, err
	}
	for i, r := range runs {
		out.Summaries = append(out.Summaries, r.sum)
		out.Timelines[string(apps[i])] = r.buckets
	}
	return out, nil
}

// Render writes the Fig 8 summary.
func (r *Fig8Result) Render(w io.Writer) {
	writeSummaries(w, "Figure 8 — resource allocation ablation (cascade 1, dynamic trace)", r.Summaries)
}

// Fig9Point is one SLO setting's outcome.
type Fig9Point struct {
	SLO            float64
	FID            float64
	ViolationRatio float64
}

// Fig9Result reproduces Fig 9: DiffServe's sensitivity to the SLO
// deadline on cascade 1.
type Fig9Result struct {
	Points []Fig9Point
}

// Fig9 regenerates Figure 9.
func Fig9(cfg Config) (*Fig9Result, error) {
	cfg = cfg.withDefaults()
	tr, err := azureTrace(cfg, 4, 32)
	if err != nil {
		return nil, err
	}
	slos := []float64{2, 3, 4, 5, 6, 8, 10}
	if cfg.Short {
		slos = []float64{3, 5, 10}
	}
	points, err := fanOut(cfg.Parallelism, len(slos), func(i int) (Fig9Point, error) {
		env, err := baselines.NewEnv("cascade1", cfg.Seed+19, minInt(cfg.Queries, 2000))
		if err != nil {
			return Fig9Point{}, err
		}
		sum, _, err := runOnTrace(env, baselines.DiffServe, tr, baselines.Options{Workers: cfg.Workers, SLO: slos[i]})
		if err != nil {
			return Fig9Point{}, err
		}
		return Fig9Point{SLO: slos[i], FID: sum.FID, ViolationRatio: sum.ViolationRatio}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig9Result{Points: points}, nil
}

// Render writes the Fig 9 table.
func (r *Fig9Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 9 — effect of SLO on performance (cascade 1)")
	fmt.Fprintf(w, "%6s %8s %8s\n", "SLO", "avg FID", "viol")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%5.0fs %8.2f %8.3f\n", p.SLO, p.FID, p.ViolationRatio)
	}
}

// MILPOverheadResult measures the allocator's solve time (§4.5
// reports ~10 ms under Gurobi).
type MILPOverheadResult struct {
	Solves     int
	MeanMillis float64
	P99Millis  float64
}

// MILPOverhead measures MILP solve times across a demand sweep.
func MILPOverhead(cfg Config) (*MILPOverheadResult, error) {
	cfg = cfg.withDefaults()
	env, err := baselines.NewEnv("cascade1", cfg.Seed+23, minInt(cfg.Queries, 2000))
	if err != nil {
		return nil, err
	}
	prof := env.Deferral
	a, err := allocator.NewMILP(allocator.Config{
		Light: env.Light, Heavy: env.Heavy,
		DiscPerImage: env.Scorer.PerImageLatency(),
		Deferral:     prof,
		TotalWorkers: cfg.Workers,
		SLO:          env.Spec.SLOSeconds,
	})
	if err != nil {
		return nil, err
	}
	n := 200
	if cfg.Short {
		n = 30
	}
	var times []float64
	rng := stats.NewRNG(cfg.Seed + 29)
	for i := 0; i < n; i++ {
		obs := allocator.Observation{
			Demand:           rng.Uniform(2, 40),
			LightQueueLen:    rng.Intn(20),
			HeavyQueueLen:    rng.Intn(20),
			LightArrivalRate: rng.Uniform(2, 40),
			HeavyArrivalRate: rng.Uniform(1, 20),
		}
		start := time.Now()
		if _, err := a.Allocate(obs); err != nil {
			return nil, err
		}
		times = append(times, time.Since(start).Seconds()*1000)
	}
	return &MILPOverheadResult{
		Solves:     n,
		MeanMillis: stats.Mean(times),
		P99Millis:  stats.Quantile(times, 0.99),
	}, nil
}

// Render writes the MILP overhead summary.
func (r *MILPOverheadResult) Render(w io.Writer) {
	fmt.Fprintf(w, "MILP solver overhead — %d solves: mean %.2f ms, p99 %.2f ms (paper: ~10 ms)\n",
		r.Solves, r.MeanMillis, r.P99Millis)
}

// SimVsClusterResult validates the discrete-event simulator against
// the HTTP cluster runtime (§4.3 reports 0.56% FID and 1.1% SLO
// violation differences between simulator and testbed).
type SimVsClusterResult struct {
	Sim, Cluster      Summary
	FIDDeltaPct       float64
	ViolationDeltaAbs float64
	// ShardParity compares a sharded-LB cluster run against a
	// single-LB run on the same deterministic trace and seed. Only
	// populated when Config.ClusterLBShards > 1.
	ShardParity *ShardParity
}

// ShardParity reports completed/dropped counts of the single-LB,
// static-sharded, and mid-trace-resharded replays of one
// deterministic trace. Under ample capacity the outcome set is
// timing-insensitive, so the counts must agree exactly: the
// partitioned query stream — even while a consistent-hash ring epoch
// flip migrates ownership mid-trace — reaches the same completions
// and the same (zero) drops the single balancer produces.
type ShardParity struct {
	Shards                           int
	Queries                          int
	SingleCompleted, SingleDropped   int
	ShardedCompleted, ShardedDropped int
	// Reshard* is the mid-trace resharding leg: the run starts with
	// Shards shards on a consistent-hash ring and adds one more at
	// half-trace, so the counts cover an epoch flip plus the queued-
	// work migration.
	ReshardCompleted, ReshardDropped int
	// Uneven* is the non-divisible leg: UnevenWorkers workers across
	// UnevenShards shards (7 across 3), where integer striping cannot
	// give every shard the same worker-group capacity. Weighted vnode
	// placement sizes each shard's key share to its group and
	// cross-shard work stealing soaks up the fractional remainder, so
	// the counts still match a single-LB baseline with the same
	// (reduced) worker count.
	UnevenWorkers, UnevenShards                int
	UnevenSingleCompleted, UnevenSingleDropped int
	UnevenCompleted, UnevenDropped             int
}

// Matches reports whether the sharded topologies — static,
// mid-trace-resharded, and unevenly striped — reproduced their
// single-LB outcome counts.
func (p *ShardParity) Matches() bool {
	return p.SingleCompleted == p.ShardedCompleted && p.SingleDropped == p.ShardedDropped &&
		p.SingleCompleted == p.ReshardCompleted && p.SingleDropped == p.ReshardDropped &&
		p.UnevenSingleCompleted == p.UnevenCompleted && p.UnevenSingleDropped == p.UnevenDropped
}

// SimVsCluster runs the same cascade-1 workload through both runtimes.
func SimVsCluster(cfg Config) (*SimVsClusterResult, error) {
	cfg = cfg.withDefaults()
	// The comparison always uses a full-length trace: compressing the
	// diurnal cycle below ~150s makes demand ramps far steeper than
	// anything the paper ran, and the cluster runtime (unlike the
	// simulator) pays real wall-clock costs during reconfiguration.
	duration := math.Max(cfg.TraceDuration/2, 150)
	raw, err := trace.AzureLike(stats.NewRNG(cfg.Seed+31), duration, 1)
	if err != nil {
		return nil, err
	}
	tr, err := raw.ScaleTo(4, 24)
	if err != nil {
		return nil, err
	}
	env, err := baselines.NewEnv("cascade1", cfg.Seed+31, minInt(cfg.Queries, 2000))
	if err != nil {
		return nil, err
	}
	// Model-load delays are disabled on both sides: wall-clock load
	// simulation at high timescale factors would distort the cluster
	// side only.
	simSum, _, err := runOnTrace(env, baselines.DiffServe, tr, baselines.Options{
		Workers: cfg.Workers, DisableModelLoadDelay: true,
	})
	if err != nil {
		return nil, err
	}

	a, err := allocator.NewMILP(allocator.Config{
		Light: env.Light, Heavy: env.Heavy,
		DiscPerImage: env.Scorer.PerImageLatency(),
		Deferral:     env.Deferral,
		TotalWorkers: cfg.Workers,
		SLO:          env.Spec.SLOSeconds,
	})
	if err != nil {
		return nil, err
	}
	ctrl, err := controller.New(controller.Config{Alloc: a})
	if err != nil {
		return nil, err
	}
	// 0.1 wall-seconds per trace-second (10x speedup) on the HTTP
	// transports: fast enough for CI, slow enough that wire overhead
	// stays negligible next to the profiled execution latencies. The
	// in-process transport has no wire overhead at all, and the raw
	// framed-TCP transport's is a small fraction of HTTP's, so both
	// validate at 5x that rate (50x real time).
	timescale := 0.1
	if cfg.ClusterTransport == cluster.TransportInproc || cfg.ClusterTransport == cluster.TransportTCP {
		timescale = 0.02
	}
	res, err := cluster.Run(cluster.HarnessConfig{
		Space: env.Space, Light: env.Light, Heavy: env.Heavy, Scorer: env.Scorer,
		Mode: loadbalancer.ModeCascade, Workers: cfg.Workers, SLO: env.Spec.SLOSeconds,
		Trace: tr, Ctrl: ctrl, Timescale: timescale, Seed: env.Seed + 17,
		DisableLoadDelay: true, Transport: cfg.ClusterTransport,
		LBShards: cfg.ClusterLBShards,
	})
	if err != nil {
		return nil, err
	}
	cs := res.Summary()
	approach := "diffserve (cluster, " + res.Transport + ")"
	if res.LBShards > 1 {
		approach = fmt.Sprintf("diffserve (cluster, %s, %d lb shards)", res.Transport, res.LBShards)
	}
	clusterSum := Summary{
		Approach: approach, Queries: cs.Queries,
		FID: cs.FID, ViolationRatio: cs.ViolationRatio,
		DropRatio: cs.DropRatio, DeferRatio: cs.DeferRatio,
		MeanLatency: cs.MeanLatency, P99Latency: cs.P99Latency,
	}
	simSum.Approach = "diffserve (simulator)"
	out := &SimVsClusterResult{Sim: simSum, Cluster: clusterSum}
	if simSum.FID != 0 {
		out.FIDDeltaPct = 100 * abs(clusterSum.FID-simSum.FID) / simSum.FID
	}
	out.ViolationDeltaAbs = abs(clusterSum.ViolationRatio - simSum.ViolationRatio)
	if cfg.ClusterLBShards > 1 {
		if out.ShardParity, err = shardParityRuns(cfg, env, timescale); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// shardParityRuns replays one deterministic lightly loaded static
// trace through the single-LB, the static-sharded, and the mid-trace
// resharded (N -> N+1 shards on a consistent-hash ring) cluster
// topologies at the same seed. With ample capacity the outcome set is
// timing-insensitive, so the completed/dropped counts must agree
// exactly — the tier's validation that consistent ID partitioning
// (with per-shard "lb/<shard>" RNG streams) loses and invents
// nothing, including across a ring epoch flip that migrates queued
// ownership while the trace is in flight.
func shardParityRuns(cfg Config, env *baselines.Env, timescale float64) (*ShardParity, error) {
	// 4 QPS leaves every striped worker group comfortable capacity
	// headroom in all three legs (at 6 QPS the post-reshard guard
	// layout of 1 light + 2 heavy per shard is marginal for the
	// cascade's deferral rate, and a tail query can shed right at the
	// SLO boundary depending on wall-clock jitter).
	const parityDuration = 40
	tr, err := trace.Static(4, parityDuration, 1)
	if err != nil {
		return nil, err
	}
	// 9 workers: divisible by both the 2-shard and the post-reshard
	// 3-shard layouts, so the striped per-shard capacity matches the
	// globally-optimized threshold in every leg. (A count that does
	// not divide the shard count leaves one shard a thinner worker
	// group than its ring share of the stream — a real capacity
	// imbalance that sheds load by design, which would make the
	// parity comparison measure striping arithmetic instead of the
	// resharding protocol.)
	const parityWorkers = 9
	// The parity legs run on wall-clock time like any cluster replay,
	// and they are timing-sensitive: on a loaded 1-core CI box a
	// scheduler stall at 50x replay spans several trace seconds and
	// sheds queries that a quiet machine serves. 12.5x keeps the
	// flip-free legs deterministic even with residual load while
	// still finishing in a few wall seconds each.
	if timescale < 0.08 {
		timescale = 0.08
	}
	// The resharding leg gets extra headroom on top of that: with
	// capacity-weighted placement the 9-worker/2-shard ring splits
	// {5,4}, so the mid-trace flip to a uniform three-way split
	// migrates more keys than a uniform-to-uniform flip would, and a
	// GC pause landing in that window used to shed the tail query
	// nearest the SLO boundary roughly once per handful of full-suite
	// runs. 4x replay makes the migrated queries' SLO budget over a
	// wall second, which no realistic pause eats.
	reshardScale := timescale
	if reshardScale < 0.25 {
		reshardScale = 0.25
	}
	out := &ShardParity{Shards: cfg.ClusterLBShards}
	run := func(ts float64, workers, shards, vnodes int, steal bool, reshard []cluster.ReshardEvent) (completed, dropped int, err error) {
		a, err := allocator.NewMILP(allocator.Config{
			Light: env.Light, Heavy: env.Heavy,
			DiscPerImage: env.Scorer.PerImageLatency(),
			Deferral:     env.Deferral,
			TotalWorkers: workers,
			SLO:          env.Spec.SLOSeconds,
		})
		if err != nil {
			return 0, 0, err
		}
		ctrl, err := controller.New(controller.Config{Alloc: a})
		if err != nil {
			return 0, 0, err
		}
		res, err := cluster.Run(cluster.HarnessConfig{
			Space: env.Space, Light: env.Light, Heavy: env.Heavy, Scorer: env.Scorer,
			Mode: loadbalancer.ModeCascade, Workers: workers, SLO: env.Spec.SLOSeconds,
			Trace: tr, Ctrl: ctrl, Timescale: ts, Seed: env.Seed + 23,
			DisableLoadDelay: true, Transport: cfg.ClusterTransport,
			LBShards: shards, RingVNodes: vnodes, Reshard: reshard, Steal: steal,
		})
		if err != nil {
			return 0, 0, err
		}
		out.Queries = res.Queries
		for _, r := range res.Collector.Records() {
			if r.Dropped {
				dropped++
			} else {
				completed++
			}
		}
		return completed, dropped, nil
	}
	if out.SingleCompleted, out.SingleDropped, err = run(timescale, parityWorkers, 1, 0, false, nil); err != nil {
		return nil, err
	}
	if out.ShardedCompleted, out.ShardedDropped, err = run(timescale, parityWorkers, cfg.ClusterLBShards, cfg.ClusterRingVNodes, false, nil); err != nil {
		return nil, err
	}
	// Resharding leg: start sharded on a true consistent-hash ring and
	// grow by one shard at half trace — the epoch flip, the worker
	// re-pin, the role re-stripe, and the drain migration all happen
	// while queries are in flight, and the outcome counts must still
	// be the single-LB counts.
	vnodes := cfg.ClusterRingVNodes
	if vnodes <= 0 {
		vnodes = 128
	}
	reshard := []cluster.ReshardEvent{
		{At: parityDuration / 2, Action: "add", Member: cfg.ClusterLBShards},
	}
	if out.ReshardCompleted, out.ReshardDropped, err = run(reshardScale, parityWorkers, cfg.ClusterLBShards, vnodes, false, reshard); err != nil {
		return nil, err
	}
	// Uneven leg: 7 workers across 3 shards, a count the shard count
	// does not divide. One shard's striped worker group is thinner than
	// the others; weighted vnode placement shrinks that shard's key
	// share proportionally, and cross-shard stealing covers the
	// fractional remainder weights cannot express. Compared against its
	// own 7-worker single-LB baseline (capacity differs from the
	// 9-worker legs above).
	const unevenWorkers, unevenShards = 7, 3
	out.UnevenWorkers, out.UnevenShards = unevenWorkers, unevenShards
	if out.UnevenSingleCompleted, out.UnevenSingleDropped, err = run(timescale, unevenWorkers, 1, 0, false, nil); err != nil {
		return nil, err
	}
	if out.UnevenCompleted, out.UnevenDropped, err = run(timescale, unevenWorkers, unevenShards, vnodes, true, nil); err != nil {
		return nil, err
	}
	return out, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Render writes the comparison.
func (r *SimVsClusterResult) Render(w io.Writer) {
	writeSummaries(w, "Simulator vs. cluster (paper §4.3: 0.56% FID, 1.1% violation gap)",
		[]Summary{r.Sim, r.Cluster})
	fmt.Fprintf(w, "FID delta: %.2f%%   violation delta: %.3f\n", r.FIDDeltaPct, r.ViolationDeltaAbs)
	if p := r.ShardParity; p != nil {
		verdict := "MATCH"
		if !p.Matches() {
			verdict = "MISMATCH"
		}
		fmt.Fprintf(w, "shard parity (%d queries, static trace): single LB %d completed / %d dropped, %d shards %d completed / %d dropped, %d->%d shards mid-trace %d completed / %d dropped — %s\n",
			p.Queries, p.SingleCompleted, p.SingleDropped, p.Shards, p.ShardedCompleted, p.ShardedDropped,
			p.Shards, p.Shards+1, p.ReshardCompleted, p.ReshardDropped, verdict)
		if p.UnevenWorkers > 0 {
			fmt.Fprintf(w, "uneven parity (%d workers / %d shards, weighted ring + stealing): single LB %d completed / %d dropped, sharded %d completed / %d dropped\n",
				p.UnevenWorkers, p.UnevenShards, p.UnevenSingleCompleted, p.UnevenSingleDropped,
				p.UnevenCompleted, p.UnevenDropped)
		}
	}
}

// cascadeCurveDeps keeps the cascade import referenced from this file.
var _ = cascade.ProfileDeferral
