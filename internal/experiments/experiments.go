// Package experiments regenerates every table and figure of the
// DiffServe paper's evaluation (§2 and §4). Each experiment returns a
// typed result plus a text rendering, and is exposed through both the
// cmd/diffserve-sim CLI and the benchmark harness at the repository
// root.
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	Fig1a  — FID vs. latency for cascade scorers + independent variants
//	Fig1b  — CDFs of per-query quality differences (easy queries)
//	Fig1c  — FID vs. throughput Pareto frontier over configurations
//	Table1 — approach comparison matrix
//	Fig4   — FID vs. SLO violations on static traces (3 load levels)
//	Fig5   — timeline on the Azure-shaped dynamic trace
//	Fig6   — average FID / violations for cascades 2 and 3
//	Fig7   — discriminator design ablation
//	Fig8   — resource-allocation ablation timeline
//	Fig9   — SLO sensitivity sweep
//	MILPOverhead — allocator solve-time measurement (§4.5)
//	SimVsCluster — simulator vs. HTTP-cluster agreement (§4.3)
package experiments

import (
	"fmt"
	"io"
	"math"

	"diffserve/internal/baselines"
	"diffserve/internal/fid"
	"diffserve/internal/imagespace"
	"diffserve/internal/stats"
	"diffserve/internal/trace"
)

// Config sizes the experiments.
type Config struct {
	// Seed drives all randomness.
	Seed uint64
	// Queries is the offline evaluation set size (default 5000, the
	// paper's dataset size).
	Queries int
	// Workers is the cluster size (default 16, the paper's testbed).
	Workers int
	// TraceDuration is the dynamic-trace length in seconds (default
	// 360, the paper's runs).
	TraceDuration float64
	// Short shrinks everything for quick runs and tests.
	Short bool
	// Parallelism caps the worker pool used to fan out independent
	// simulation runs (approaches, loads, sweep points). 0 uses one
	// worker per available CPU; 1 forces serial execution. Results are
	// bit-for-bit identical at every setting.
	Parallelism int
	// ClusterTransport selects the cluster runtime's wire path for
	// SimVsCluster: "json" (default), "binary", "tcp" (raw framed
	// TCP), or "inproc". The in-process and TCP transports replay at
	// the highest timescale factors.
	ClusterTransport string
	// ClusterLBShards runs SimVsCluster's cluster side through the
	// sharded LB tier with this many shards (0 or 1: single LB). With
	// shards the experiment also replays a deterministic static trace
	// through the single-LB, static-sharded, and mid-trace-resharded
	// (N -> N+1 shards via the consistent-hash ring) topologies and
	// reports the completed/dropped parity between them.
	ClusterLBShards int
	// ClusterRingVNodes selects the sharded tier's placement (see
	// cluster.HarnessConfig.RingVNodes): 0 keeps the legacy static
	// modulus for the static-shard runs; the resharding parity leg
	// always uses a consistent-hash ring (this value, or 128 when 0).
	ClusterRingVNodes int
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 20250610
	}
	if c.Queries <= 0 {
		c.Queries = 5000
	}
	if c.Workers <= 0 {
		c.Workers = 16
	}
	if c.TraceDuration <= 0 {
		c.TraceDuration = 360
	}
	if c.Short {
		if c.Queries > 1500 {
			c.Queries = 1500
		}
		if c.TraceDuration > 120 {
			c.TraceDuration = 120
		}
	}
	return c
}

// offlineSet builds the shared offline evaluation fixture: a query
// set and its ground-truth FID reference.
func offlineSet(space *imagespace.Space, n int) ([]*imagespace.Query, *fid.Reference, error) {
	queries := space.SampleQueries(0, n)
	real := make([][]float64, n)
	for i, q := range queries {
		real[i] = space.RealImage(q)
	}
	ref, err := fid.NewReference(real)
	if err != nil {
		return nil, nil, err
	}
	return queries, ref, nil
}

// azureTrace generates the paper's dynamic workload: an Azure-shaped
// diurnal trace scaled to 4–32 QPS (the artifact's trace_4to32qps).
func azureTrace(cfg Config, minQPS, maxQPS float64) (*trace.Trace, error) {
	raw, err := trace.AzureLike(stats.NewRNG(cfg.Seed+1), cfg.TraceDuration, 1)
	if err != nil {
		return nil, err
	}
	return raw.ScaleTo(minQPS, maxQPS)
}

// runOnTrace builds and runs one approach, returning its result.
func runOnTrace(env *baselines.Env, app baselines.Approach, tr *trace.Trace, opt baselines.Options) (summary Summary, buckets []TimelineBucket, err error) {
	sys, err := env.NewSystem(app, tr, opt)
	if err != nil {
		return Summary{}, nil, err
	}
	res, err := sys.Run()
	if err != nil {
		return Summary{}, nil, err
	}
	s := res.Summary()
	summary = Summary{
		Approach:       string(app),
		Queries:        s.Queries,
		FID:            s.FID,
		ViolationRatio: s.ViolationRatio,
		DropRatio:      s.DropRatio,
		DeferRatio:     s.DeferRatio,
		MeanLatency:    s.MeanLatency,
		P99Latency:     s.P99Latency,
	}
	bks, err := res.Collector.Timeline(10, res.Reference, 48)
	if err != nil {
		return Summary{}, nil, err
	}
	for _, b := range bks {
		buckets = append(buckets, TimelineBucket{
			Start: b.Start, DemandQPS: b.DemandQPS,
			FID: b.FID, ViolationRatio: b.ViolationRatio, DeferRatio: b.DeferRatio,
		})
	}
	return summary, buckets, nil
}

// Summary is one approach's end-to-end outcome.
type Summary struct {
	Approach       string
	Queries        int
	FID            float64
	ViolationRatio float64
	DropRatio      float64
	DeferRatio     float64
	MeanLatency    float64
	P99Latency     float64
}

// TimelineBucket is one 10-second window of a timeline figure.
type TimelineBucket struct {
	Start          float64
	DemandQPS      float64
	FID            float64 // NaN when too few samples
	ViolationRatio float64
	DeferRatio     float64
}

// writeSummaries renders a summary table.
func writeSummaries(w io.Writer, title string, sums []Summary) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-28s %8s %8s %8s %8s %9s %9s\n",
		"approach", "FID", "viol", "drop", "defer", "meanLat", "p99Lat")
	for _, s := range sums {
		fmt.Fprintf(w, "%-28s %8.2f %8.3f %8.3f %8.2f %8.2fs %8.2fs\n",
			s.Approach, s.FID, s.ViolationRatio, s.DropRatio, s.DeferRatio, s.MeanLatency, s.P99Latency)
	}
}

func fmtNaN(v float64) string {
	if math.IsNaN(v) {
		return "     -"
	}
	return fmt.Sprintf("%6.2f", v)
}
