package experiments

import (
	"fmt"
	"io"
	"sort"

	"diffserve/internal/baselines"
	"diffserve/internal/trace"
)

// Table1Row is one approach's qualitative properties (paper Table 1).
type Table1Row struct {
	Approach   string
	Allocation string // "Static" or "Dynamic"
	QueryAware bool
}

// Table1 reproduces the paper's approach-comparison matrix.
func Table1() []Table1Row {
	return []Table1Row{
		{Approach: "Clipper-Light", Allocation: "Static", QueryAware: false},
		{Approach: "Clipper-Heavy", Allocation: "Static", QueryAware: false},
		{Approach: "Proteus", Allocation: "Dynamic", QueryAware: false},
		{Approach: "DiffServe-Static", Allocation: "Static", QueryAware: true},
		{Approach: "DiffServe", Allocation: "Dynamic", QueryAware: true},
	}
}

// RenderTable1 writes Table 1.
func RenderTable1(w io.Writer) {
	fmt.Fprintln(w, "Table 1 — Comparison of DiffServe with baselines")
	fmt.Fprintf(w, "%-18s %-10s %s\n", "Approach", "Allocation", "Query-aware")
	for _, r := range Table1() {
		aware := "No"
		if r.QueryAware {
			aware = "Yes"
		}
		fmt.Fprintf(w, "%-18s %-10s %s\n", r.Approach, r.Allocation, aware)
	}
}

// Fig4Point is one (violation, FID) operating point of an approach
// under a static load.
type Fig4Point struct {
	Approach       string
	OverProvision  float64
	FID            float64
	ViolationRatio float64
}

// Fig4Result reproduces Fig 4: the FID / SLO-violation trade-off on
// synthetic static traces at three load levels. Dynamic approaches
// (Proteus, DiffServe) trace a curve by sweeping the over-provisioning
// factor; the static Clipper baselines contribute one point each.
type Fig4Result struct {
	// Loads maps load label ("low", "medium", "high") to points.
	Loads map[string][]Fig4Point
	// QPS records the demand used for each load label.
	QPS map[string]float64
}

// Fig4 regenerates Figure 4 for cascade 1.
func Fig4(cfg Config) (*Fig4Result, error) {
	cfg = cfg.withDefaults()
	loads := map[string]float64{"low": 8, "medium": 16, "high": 26}
	sweep := []float64{0.7, 0.85, 1.0, 1.05, 1.2, 1.5}
	duration := cfg.TraceDuration / 2
	if cfg.Short {
		sweep = []float64{0.85, 1.05, 1.4}
	}

	out := &Fig4Result{Loads: map[string][]Fig4Point{}, QPS: loads}

	// Flatten (load, approach, over-provision) into one deterministic
	// job list so independent runs fan out across the worker pool.
	labels := []string{"low", "medium", "high"}
	type fig4Job struct {
		label string
		app   baselines.Approach
		op    float64 // 0 for the static baselines
	}
	var jobs []fig4Job
	for _, label := range labels {
		for _, app := range []baselines.Approach{baselines.ClipperLight, baselines.ClipperHeavy} {
			jobs = append(jobs, fig4Job{label: label, app: app})
		}
		for _, app := range []baselines.Approach{baselines.Proteus, baselines.DiffServe} {
			for _, op := range sweep {
				jobs = append(jobs, fig4Job{label: label, app: app, op: op})
			}
		}
	}

	// Fresh env and trace per load level keeps approaches comparable
	// within the level while isolating RNG streams; runs within a
	// level share the env (its generation cache is synchronized).
	envs := map[string]*baselines.Env{}
	trs := map[string]*trace.Trace{}
	for _, label := range labels {
		tr, err := trace.Static(loads[label], duration, 1)
		if err != nil {
			return nil, err
		}
		env, err := baselines.NewEnv("cascade1", cfg.Seed+7, minInt(cfg.Queries, 2000))
		if err != nil {
			return nil, err
		}
		envs[label], trs[label] = env, tr
	}

	points, err := fanOut(cfg.Parallelism, len(jobs), func(i int) (Fig4Point, error) {
		j := jobs[i]
		sum, _, err := runOnTrace(envs[j.label], j.app, trs[j.label], baselines.Options{
			Workers: cfg.Workers, OverProvision: j.op,
		})
		if err != nil {
			return Fig4Point{}, err
		}
		return Fig4Point{
			Approach: string(j.app), OverProvision: j.op,
			FID: sum.FID, ViolationRatio: sum.ViolationRatio,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, p := range points {
		out.Loads[jobs[i].label] = append(out.Loads[jobs[i].label], p)
	}
	return out, nil
}

// Render writes the Fig 4 tables.
func (r *Fig4Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 4 — FID vs. SLO violation ratio on static traces (cascade 1)")
	labels := []string{"low", "medium", "high"}
	for _, label := range labels {
		fmt.Fprintf(w, "\n%s load (%.0f QPS)\n", label, r.QPS[label])
		fmt.Fprintf(w, "  %-16s %6s %8s %6s\n", "approach", "op", "viol", "FID")
		for _, p := range r.Loads[label] {
			op := "-"
			if p.OverProvision > 0 {
				op = fmt.Sprintf("%.2f", p.OverProvision)
			}
			fmt.Fprintf(w, "  %-16s %6s %8.3f %6.2f\n", p.Approach, op, p.ViolationRatio, p.FID)
		}
	}
}

// Fig5Result reproduces Fig 5: the per-approach timeline (demand, FID
// over time, SLO violations over time) on the Azure-shaped dynamic
// trace, plus end-to-end summaries.
type Fig5Result struct {
	TraceName string
	Summaries []Summary
	// Timelines maps approach to 10-second buckets.
	Timelines map[string][]TimelineBucket
}

// Fig5 regenerates Figure 5 for cascade 1.
func Fig5(cfg Config) (*Fig5Result, error) {
	cfg = cfg.withDefaults()
	tr, err := azureTrace(cfg, 4, 32)
	if err != nil {
		return nil, err
	}
	env, err := baselines.NewEnv("cascade1", cfg.Seed+11, minInt(cfg.Queries, 2000))
	if err != nil {
		return nil, err
	}
	out := &Fig5Result{TraceName: tr.Name(), Timelines: map[string][]TimelineBucket{}}
	apps := baselines.All()
	runs, err := fanOut(cfg.Parallelism, len(apps), func(i int) (approachRun, error) {
		sum, buckets, err := runOnTrace(env, apps[i], tr, baselines.Options{Workers: cfg.Workers})
		return approachRun{sum: sum, buckets: buckets}, err
	})
	if err != nil {
		return nil, err
	}
	for i, r := range runs {
		out.Summaries = append(out.Summaries, r.sum)
		out.Timelines[string(apps[i])] = r.buckets
	}
	return out, nil
}

// approachRun bundles one simulated run's outputs for fan-out.
type approachRun struct {
	sum     Summary
	buckets []TimelineBucket
}

// Render writes the Fig 5 summary and timeline.
func (r *Fig5Result) Render(w io.Writer) {
	writeSummaries(w, fmt.Sprintf("Figure 5 — dynamic trace %s (cascade 1)", r.TraceName), r.Summaries)
	apps := make([]string, 0, len(r.Timelines))
	for a := range r.Timelines {
		apps = append(apps, a)
	}
	sort.Strings(apps)
	fmt.Fprintln(w, "\ntimeline (per 10s bucket: demand QPS | per-approach FID | per-approach viol):")
	fmt.Fprintf(w, "%6s %7s", "t", "demand")
	for _, a := range apps {
		fmt.Fprintf(w, " | %-14.14s", a)
	}
	fmt.Fprintln(w)
	n := 0
	for _, b := range r.Timelines[apps[0]] {
		fmt.Fprintf(w, "%6.0f %7.1f", b.Start, b.DemandQPS)
		for _, a := range apps {
			tb := r.Timelines[a][n]
			fmt.Fprintf(w, " | %s %.2f", fmtNaN(tb.FID), tb.ViolationRatio)
		}
		fmt.Fprintln(w)
		n++
	}
}

// Fig6Result reproduces Fig 6: average FID and SLO violation ratio for
// cascades 2 and 3 across all approaches.
type Fig6Result struct {
	// Cascades maps cascade name to per-approach summaries.
	Cascades map[string][]Summary
}

// Fig6 regenerates Figure 6 (simulator; the paper's testbed — the
// SimVsCluster experiment validates the simulator against the HTTP
// cluster runtime).
func Fig6(cfg Config) (*Fig6Result, error) {
	cfg = cfg.withDefaults()
	out := &Fig6Result{Cascades: map[string][]Summary{}}
	// Cascade 2 uses the 4-32 QPS trace; cascade 3 (much heavier
	// models, SLO 15s) uses 1-8 QPS, as in the artifact.
	ranges := map[string][2]float64{
		"cascade2": {4, 32},
		"cascade3": {1, 8},
	}
	cascades := []string{"cascade2", "cascade3"}
	apps := baselines.All()
	type fig6Job struct {
		cascade string
		app     baselines.Approach
	}
	var jobs []fig6Job
	envs := map[string]*baselines.Env{}
	trs := map[string]*trace.Trace{}
	for _, name := range cascades {
		tr, err := azureTrace(cfg, ranges[name][0], ranges[name][1])
		if err != nil {
			return nil, err
		}
		env, err := baselines.NewEnv(name, cfg.Seed+13, minInt(cfg.Queries, 2000))
		if err != nil {
			return nil, err
		}
		envs[name], trs[name] = env, tr
		for _, app := range apps {
			jobs = append(jobs, fig6Job{cascade: name, app: app})
		}
	}
	sums, err := fanOut(cfg.Parallelism, len(jobs), func(i int) (Summary, error) {
		j := jobs[i]
		sum, _, err := runOnTrace(envs[j.cascade], j.app, trs[j.cascade], baselines.Options{Workers: cfg.Workers})
		return sum, err
	})
	if err != nil {
		return nil, err
	}
	for i, sum := range sums {
		out.Cascades[jobs[i].cascade] = append(out.Cascades[jobs[i].cascade], sum)
	}
	return out, nil
}

// Render writes the Fig 6 tables.
func (r *Fig6Result) Render(w io.Writer) {
	for _, name := range []string{"cascade2", "cascade3"} {
		writeSummaries(w, fmt.Sprintf("Figure 6 — %s averages", name), r.Cascades[name])
		fmt.Fprintln(w)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
