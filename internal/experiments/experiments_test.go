package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// shortCfg keeps experiment tests fast while exercising every code
// path; the benchmark harness runs the full sizes.
func shortCfg() Config {
	return Config{Seed: 777, Short: true}
}

func TestFig1aShapes(t *testing.T) {
	r, err := Fig1a(shortCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curves) != 2 {
		t.Fatalf("pairs = %d, want 2", len(r.Curves))
	}
	for pair, curves := range r.Curves {
		if len(curves) != 4 {
			t.Errorf("%s: %d scorers, want 4", pair, len(curves))
		}
		for name, pts := range curves {
			if len(pts) == 0 {
				t.Errorf("%s/%s: empty curve", pair, name)
			}
			// Latency grows with deferral fraction.
			for i := 1; i < len(pts); i++ {
				if pts[i].AvgLatency < pts[i-1].AvgLatency-1e-9 {
					t.Errorf("%s/%s: latency not monotone", pair, name)
				}
			}
		}
	}
	if len(r.Variants) != 8 {
		t.Errorf("variants = %d, want 8", len(r.Variants))
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 1a") {
		t.Error("render missing title")
	}
}

func TestFig1bEasyFractions(t *testing.T) {
	r, err := Fig1b(shortCfg())
	if err != nil {
		t.Fatal(err)
	}
	for pair, p := range r.Pairs {
		if p.EasyFraction < 0.15 || p.EasyFraction > 0.45 {
			t.Errorf("%s: easy fraction %.2f outside paper range", pair, p.EasyFraction)
		}
		if len(p.PickScoreDiff) == 0 || len(p.ConfidenceDiff) == 0 {
			t.Errorf("%s: missing samples", pair)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 1b") {
		t.Error("render missing title")
	}
}

func TestFig1cFrontier(t *testing.T) {
	r, err := Fig1c(shortCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.Configs == 0 || len(r.Frontier) == 0 {
		t.Fatal("no configurations enumerated")
	}
	// Frontier must be sorted by throughput with decreasing FID.
	for i := 1; i < len(r.Frontier); i++ {
		if r.Frontier[i].ThroughputQPS < r.Frontier[i-1].ThroughputQPS {
			t.Error("frontier not sorted by throughput")
		}
		if r.Frontier[i].FID < r.Frontier[i-1].FID-1e-9 {
			t.Error("frontier FID should not improve as throughput grows")
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Pareto") {
		t.Error("render missing frontier")
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !rows[4].QueryAware || rows[4].Allocation != "Dynamic" {
		t.Error("DiffServe row wrong")
	}
	var buf bytes.Buffer
	RenderTable1(&buf)
	if !strings.Contains(buf.String(), "DiffServe") {
		t.Error("render missing rows")
	}
}

func TestFig9SLOSweep(t *testing.T) {
	r, err := Fig9(shortCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Looser SLOs must not make violations dramatically worse.
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if last.ViolationRatio > first.ViolationRatio+0.05 {
		t.Errorf("violations grew with looser SLO: %.3f -> %.3f", first.ViolationRatio, last.ViolationRatio)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 9") {
		t.Error("render missing title")
	}
}

func TestMILPOverheadUnderPaperBudget(t *testing.T) {
	r, err := MILPOverhead(shortCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.Solves == 0 || r.MeanMillis <= 0 {
		t.Fatalf("bad measurement %+v", r)
	}
	// The paper reports ~10ms with Gurobi; our solver should stay in
	// the same regime (well under the 2s control interval).
	if r.MeanMillis > 200 {
		t.Errorf("mean solve time %.1fms too slow for a 2s control loop", r.MeanMillis)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "MILP") {
		t.Error("render missing title")
	}
}

func TestFig8AblationOrdering(t *testing.T) {
	r, err := Fig8(shortCfg())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Summary{}
	for _, s := range r.Summaries {
		byName[s.Approach] = s
	}
	dd, ok := byName["diffserve"]
	if !ok {
		t.Fatal("diffserve missing from ablation")
	}
	st, ok := byName["diffserve-static-threshold"]
	if !ok {
		t.Fatal("static-threshold missing")
	}
	// The static threshold gives up off-peak quality (higher FID).
	if !(dd.FID <= st.FID+0.3) {
		t.Errorf("diffserve FID %.2f should be at least as good as static threshold %.2f", dd.FID, st.FID)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 8") {
		t.Error("render missing title")
	}
}

func TestSimVsClusterAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster comparison skipped in -short mode")
	}
	r, err := SimVsCluster(shortCfg())
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(r.Sim.FID) || math.IsNaN(r.Cluster.FID) {
		t.Fatal("FID not computed")
	}
	// The paper reports 0.56% FID / 1.1% violation agreement. Run in
	// isolation this reproduction achieves ~0.03% / ~0.02, but the
	// cluster side runs on wall-clock time and `go test ./...`
	// executes packages concurrently, so CPU contention inflates the
	// cluster's latencies. The bounds below leave headroom for that.
	if r.FIDDeltaPct > 8 {
		t.Errorf("FID delta %.2f%% too large", r.FIDDeltaPct)
	}
	if r.ViolationDeltaAbs > 0.20 {
		t.Errorf("violation delta %.3f too large", r.ViolationDeltaAbs)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Simulator vs. cluster") {
		t.Error("render missing title")
	}
}

// TestSimVsClusterInprocTransport re-runs the validation over the
// in-process transport, which replays at 5x the HTTP timescale. The
// zero-serialization path must agree with the simulator just like the
// wire paths do.
func TestSimVsClusterInprocTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster comparison skipped in -short mode")
	}
	cfg := shortCfg()
	cfg.ClusterTransport = "inproc"
	r, err := SimVsCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(r.Sim.FID) || math.IsNaN(r.Cluster.FID) {
		t.Fatal("FID not computed")
	}
	if !strings.Contains(r.Cluster.Approach, "inproc") {
		t.Errorf("cluster approach %q does not name the transport", r.Cluster.Approach)
	}
	// Same agreement headroom as the JSON-transport test: the cluster
	// side still runs on (compressed) wall-clock time under CI load.
	if r.FIDDeltaPct > 8 {
		t.Errorf("FID delta %.2f%% too large", r.FIDDeltaPct)
	}
	if r.ViolationDeltaAbs > 0.20 {
		t.Errorf("violation delta %.3f too large", r.ViolationDeltaAbs)
	}
}

// TestSimVsClusterTCPTransport re-runs the validation over the raw
// framed-TCP transport at 50x real time — a real socket between
// components, with wire overhead low enough for the in-process
// timescale. Agreement bounds match the other transports.
func TestSimVsClusterTCPTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster comparison skipped in -short mode")
	}
	cfg := shortCfg()
	cfg.ClusterTransport = "tcp"
	r, err := SimVsCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(r.Sim.FID) || math.IsNaN(r.Cluster.FID) {
		t.Fatal("FID not computed")
	}
	if !strings.Contains(r.Cluster.Approach, "tcp") {
		t.Errorf("cluster approach %q does not name the transport", r.Cluster.Approach)
	}
	if r.FIDDeltaPct > 8 {
		t.Errorf("FID delta %.2f%% too large", r.FIDDeltaPct)
	}
	if r.ViolationDeltaAbs > 0.20 {
		t.Errorf("violation delta %.3f too large", r.ViolationDeltaAbs)
	}
}

// TestSimVsClusterShardedTCP validates the sharded LB tier end to
// end: the cluster side runs two LB shards over raw TCP (per-shard
// "lb/<shard>" RNG streams), must still agree with the simulator, and
// the shard-parity leg must reproduce the single-LB completed/dropped
// counts exactly on the deterministic static trace.
func TestSimVsClusterShardedTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster comparison skipped in -short mode")
	}
	cfg := shortCfg()
	cfg.ClusterTransport = "tcp"
	cfg.ClusterLBShards = 2
	r, err := SimVsCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(r.Sim.FID) || math.IsNaN(r.Cluster.FID) {
		t.Fatal("FID not computed")
	}
	if !strings.Contains(r.Cluster.Approach, "2 lb shards") {
		t.Errorf("cluster approach %q does not name the shard count", r.Cluster.Approach)
	}
	if r.FIDDeltaPct > 8 {
		t.Errorf("FID delta %.2f%% too large", r.FIDDeltaPct)
	}
	if r.ViolationDeltaAbs > 0.20 {
		t.Errorf("violation delta %.3f too large", r.ViolationDeltaAbs)
	}
	p := r.ShardParity
	if p == nil {
		t.Fatal("shard parity not populated")
	}
	if p.SingleCompleted+p.SingleDropped != p.Queries {
		t.Errorf("single-LB accounting: %d completed + %d dropped != %d queries",
			p.SingleCompleted, p.SingleDropped, p.Queries)
	}
	if !p.Matches() {
		t.Errorf("sharded topologies diverged from single LB: single %d/%d, sharded %d/%d, resharded %d/%d (completed/dropped)",
			p.SingleCompleted, p.SingleDropped, p.ShardedCompleted, p.ShardedDropped,
			p.ReshardCompleted, p.ReshardDropped)
	}
	if p.SingleDropped != 0 {
		t.Errorf("parity trace dropped %d queries under light load", p.SingleDropped)
	}
	if p.ReshardCompleted != p.Queries || p.ReshardDropped != 0 {
		t.Errorf("2->3-shard mid-trace reshard lost queries: %d completed / %d dropped of %d",
			p.ReshardCompleted, p.ReshardDropped, p.Queries)
	}
	if p.UnevenWorkers != 7 || p.UnevenShards != 3 {
		t.Errorf("uneven leg ran %d workers / %d shards, want 7 / 3", p.UnevenWorkers, p.UnevenShards)
	}
	if p.UnevenCompleted != p.UnevenSingleCompleted || p.UnevenDropped != p.UnevenSingleDropped {
		t.Errorf("7-worker/3-shard leg diverged from its single-LB baseline: single %d/%d, sharded %d/%d (completed/dropped)",
			p.UnevenSingleCompleted, p.UnevenSingleDropped, p.UnevenCompleted, p.UnevenDropped)
	}
	if p.UnevenSingleDropped != 0 {
		t.Errorf("uneven parity baseline dropped %d queries under light load", p.UnevenSingleDropped)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "shard parity") {
		t.Error("render missing shard parity line")
	}
}

func TestReuseStudyCompatibility(t *testing.T) {
	r, err := ReuseStudy(shortCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	var turbo, xs ReuseRow
	for _, row := range r.Rows {
		if row.Pair == "sdturbo->sdv15" {
			turbo = row
		} else {
			xs = row
		}
	}
	// Paper §5: SD-Turbo reuse shows no significant FID change; SDXS
	// reuse degrades FID (18.55 -> 19.75, i.e. ~+1.2).
	turboDelta := turbo.FIDReuse - turbo.FIDFresh
	xsDelta := xs.FIDReuse - xs.FIDFresh
	if turboDelta > 0.7 {
		t.Errorf("SD-Turbo reuse delta %.2f should be insignificant", turboDelta)
	}
	if xsDelta < 0.6 || xsDelta > 2.0 {
		t.Errorf("SDXS reuse delta %.2f, want ~+1.2 (paper)", xsDelta)
	}
	if !(xsDelta > turboDelta) {
		t.Errorf("SDXS reuse should degrade more than SD-Turbo: %.2f vs %.2f", xsDelta, turboDelta)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "reuse") {
		t.Error("render missing title")
	}
}

func TestMultiLevelStudyShapes(t *testing.T) {
	r, err := MultiLevelStudy(shortCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Stages) != 3 {
		t.Fatalf("stages = %v", r.Stages)
	}
	if len(r.Points) == 0 {
		t.Fatal("no operating points")
	}
	for _, p := range r.Points {
		sum := 0.0
		for _, f := range p.StageFractions {
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("stage fractions sum to %v", sum)
		}
		if p.FID <= 0 || p.AvgLatency <= 0 {
			t.Errorf("bad point %+v", p)
		}
	}
	if r.BestTwoLevelFID <= 0 {
		t.Error("two-level comparison missing")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "three-level") {
		t.Error("render missing title")
	}
}
