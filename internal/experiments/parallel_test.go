package experiments

import (
	"bytes"
	"os"
	"testing"
)

// TestFig5MatchesPreRefactorGolden renders Figure 5 at the fixed test
// seed and compares it byte-for-byte against the output captured from
// the pre-refactor (serial, batch-moments, uncached-generation)
// implementation. This pins down three properties at once: the
// streaming metrics pipeline reports the same numbers, the generation
// memo is byte-identical, and the parallel fan-out is deterministic.
func TestFig5MatchesPreRefactorGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/fig5_short_seed777.golden")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 777, Short: true, Parallelism: 4}
	r, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	r.Render(&got)
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("Fig5 render diverged from pre-refactor golden.\ngot:\n%s\nwant:\n%s", got.Bytes(), want)
	}
}

// TestFanOutSerialParallelIdentical runs the same experiment serially
// and with a saturated worker pool and requires byte-identical
// renders: every run owns its seeded RNG streams, so scheduling must
// not be observable.
func TestFanOutSerialParallelIdentical(t *testing.T) {
	serialCfg := Config{Seed: 777, Short: true, Parallelism: 1}
	parallelCfg := Config{Seed: 777, Short: true, Parallelism: 8}
	serial, err := Fig8(serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig8(parallelCfg)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	serial.Render(&a)
	parallel.Render(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("Fig8 serial and parallel runs diverged.\nserial:\n%s\nparallel:\n%s", a.Bytes(), b.Bytes())
	}
	if len(serial.Summaries) != len(parallel.Summaries) {
		t.Fatalf("summary counts differ: %d vs %d", len(serial.Summaries), len(parallel.Summaries))
	}
	for i := range serial.Summaries {
		if serial.Summaries[i] != parallel.Summaries[i] {
			t.Errorf("summary %d differs: %+v vs %+v", i, serial.Summaries[i], parallel.Summaries[i])
		}
	}
}

// TestFanOutHelper exercises the pool directly: ordering, error
// propagation, and the serial fast path.
func TestFanOutHelper(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		got, err := fanOut(workers, 37, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 37 {
			t.Fatalf("workers=%d: len %d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
	wantErr := os.ErrInvalid
	for _, workers := range []int{1, 4} {
		_, err := fanOut(workers, 10, func(i int) (int, error) {
			if i >= 3 {
				return 0, wantErr
			}
			return i, nil
		})
		if err != wantErr {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, wantErr)
		}
	}
	if out, err := fanOut(4, 0, func(i int) (int, error) { return 0, nil }); err != nil || len(out) != 0 {
		t.Fatalf("empty fan-out: %v %v", out, err)
	}
}
