package experiments

import (
	"fmt"
	"io"

	"diffserve/internal/cascade"
	"diffserve/internal/discriminator"
	"diffserve/internal/imagespace"
	"diffserve/internal/model"
	"diffserve/internal/stats"
)

// ReuseRow is one light-heavy pair's outcome in the §5 reuse study.
type ReuseRow struct {
	Pair          string
	FIDFresh      float64 // heavy generations from fresh noise
	FIDReuse      float64 // heavy generations resumed from the light output
	Compatibility float64 // dot product of the variants' artifact modes
}

// ReuseResult reproduces the §5 "Reuse Opportunities" discussion: the
// FID impact of letting the heavyweight model build on the lightweight
// model's intermediate output. The paper reports no significant change
// when reusing SD-Turbo outputs under SDv1.5, but FID degrading from
// 18.55 to 19.75 when reusing SDXS outputs — model compatibility is
// critical.
type ReuseResult struct {
	Rows []ReuseRow
}

// ReuseStudy regenerates the §5 reuse comparison.
func ReuseStudy(cfg Config) (*ReuseResult, error) {
	cfg = cfg.withDefaults()
	rng := stats.NewRNG(cfg.Seed)
	space, err := imagespace.NewSpace(imagespace.DefaultSpaceConfig(), rng.Stream("space"))
	if err != nil {
		return nil, err
	}
	reg := model.BuiltinRegistry()
	queries, ref, err := offlineSet(space, cfg.Queries)
	if err != nil {
		return nil, err
	}

	pairs := [][2]string{{"sdturbo", "sdv15"}, {"sdxs", "sdv15"}}
	rows, err := fanOut(cfg.Parallelism, len(pairs), func(p int) (ReuseRow, error) {
		pairSpec := pairs[p]
		light, heavy := reg.MustGet(pairSpec[0]), reg.MustGet(pairSpec[1])
		fresh := make([][]float64, len(queries))
		reuse := make([][]float64, len(queries))
		for i, q := range queries {
			li := space.GenerateDeterministic(q, light.Name, light.Gen)
			fresh[i] = space.GenerateDeterministic(q, heavy.Name, heavy.Gen).Features
			reuse[i] = space.GenerateWithReuse(q, heavy.Name, heavy.Gen, li, light.Gen).Features
		}
		fidFresh, err := ref.Score(fresh)
		if err != nil {
			return ReuseRow{}, err
		}
		fidReuse, err := ref.Score(reuse)
		if err != nil {
			return ReuseRow{}, err
		}
		return ReuseRow{
			Pair:     pairSpec[0] + "->" + pairSpec[1],
			FIDFresh: fidFresh, FIDReuse: fidReuse,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &ReuseResult{Rows: rows}, nil
}

// Render writes the reuse study table.
func (r *ReuseResult) Render(w io.Writer) {
	fmt.Fprintln(w, "§5 reuse opportunities — heavy-model FID with and without reusing the light output")
	fmt.Fprintf(w, "%-20s %10s %10s %8s\n", "pair", "fresh", "reuse", "delta")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-20s %10.2f %10.2f %+8.2f\n", row.Pair, row.FIDFresh, row.FIDReuse, row.FIDReuse-row.FIDFresh)
	}
}

// MultiLevelPoint is one operating point of the three-level pipeline.
type MultiLevelPoint struct {
	Thresholds     []float64
	StageFractions []float64
	AvgLatency     float64
	FID            float64
}

// MultiLevelResult demonstrates the §5 longer-pipeline extension: a
// three-stage cascade (SDXS -> SD-Turbo -> SDv1.5) with a
// discriminator and confidence threshold after each of the first two
// stages.
type MultiLevelResult struct {
	Stages []string
	Points []MultiLevelPoint
	// BestTwoLevelFID is the best FID of the standard two-level
	// cascade (SD-Turbo -> SDv1.5) over the same threshold budget,
	// for comparison.
	BestTwoLevelFID float64
}

// MultiLevelStudy regenerates the longer-pipeline demonstration.
func MultiLevelStudy(cfg Config) (*MultiLevelResult, error) {
	cfg = cfg.withDefaults()
	rng := stats.NewRNG(cfg.Seed)
	space, err := imagespace.NewSpace(imagespace.DefaultSpaceConfig(), rng.Stream("space"))
	if err != nil {
		return nil, err
	}
	reg := model.BuiltinRegistry()
	queries, ref, err := offlineSet(space, cfg.Queries)
	if err != nil {
		return nil, err
	}
	mkDisc := func(label string) (discriminator.Scorer, error) {
		return discriminator.New(discriminator.Config{
			Arch: discriminator.ArchEfficientNet, Train: discriminator.TrainGT,
		}, rng.Stream("disc:"+label))
	}
	d0, err := mkDisc("stage0")
	if err != nil {
		return nil, err
	}
	d1, err := mkDisc("stage1")
	if err != nil {
		return nil, err
	}
	variants := []*model.Variant{reg.MustGet("sdxs"), reg.MustGet("sdturbo"), reg.MustGet("sdv15")}
	ml, err := cascade.NewMultiLevel(space, variants, []discriminator.Scorer{d0, d1})
	if err != nil {
		return nil, err
	}

	out := &MultiLevelResult{}
	for _, v := range variants {
		out.Stages = append(out.Stages, v.DisplayName)
	}

	// Sweep a small grid of per-stage deferral budgets.
	grid := []float64{0.3, 0.5, 0.7}
	if cfg.Short {
		grid = []float64{0.4, 0.7}
	}
	prof0, err := ml.ProfileStage(queries, nil, 0)
	if err != nil {
		return nil, err
	}
	for _, f0 := range grid {
		t0 := prof0.ThresholdForFraction(f0)
		prof1, err := ml.ProfileStage(queries, []float64{t0}, 1)
		if err != nil {
			return nil, err
		}
		for _, f1 := range grid {
			t1 := prof1.ThresholdForFraction(f1)
			thresholds := []float64{t0, t1}
			feats := make([][]float64, len(queries))
			latency := 0.0
			for i, q := range queries {
				o, err := ml.Process(q, thresholds)
				if err != nil {
					return nil, err
				}
				feats[i] = o.Served.Features
				latency += o.Latency
			}
			score, err := ref.Score(feats)
			if err != nil {
				return nil, err
			}
			fracs, err := ml.StageFractions(queries, thresholds)
			if err != nil {
				return nil, err
			}
			out.Points = append(out.Points, MultiLevelPoint{
				Thresholds:     thresholds,
				StageFractions: fracs,
				AvgLatency:     latency / float64(len(queries)),
				FID:            score,
			})
		}
	}

	// Two-level comparison: SD-Turbo -> SDv1.5 over the same fracs.
	two, err := cascade.New(space, reg.MustGet("sdturbo"), reg.MustGet("sdv15"), d1)
	if err != nil {
		return nil, err
	}
	prof, err := cascade.ProfileDeferral(two, queries)
	if err != nil {
		return nil, err
	}
	best := -1.0
	for _, f := range grid {
		thr := prof.ThresholdForFraction(f)
		feats := make([][]float64, len(queries))
		for i, q := range queries {
			feats[i] = two.Process(q, thr).Served.Features
		}
		score, err := ref.Score(feats)
		if err != nil {
			return nil, err
		}
		if best < 0 || score < best {
			best = score
		}
	}
	out.BestTwoLevelFID = best
	return out, nil
}

// Render writes the multi-level study.
func (r *MultiLevelResult) Render(w io.Writer) {
	fmt.Fprintf(w, "§5 longer pipelines — three-level cascade %v\n", r.Stages)
	fmt.Fprintf(w, "%-16s %-22s %10s %8s\n", "thresholds", "stage fractions", "latency", "FID")
	for _, p := range r.Points {
		fmt.Fprintf(w, "[%.2f %.2f]     [%.2f %.2f %.2f]       %8.2fs %8.2f\n",
			p.Thresholds[0], p.Thresholds[1],
			p.StageFractions[0], p.StageFractions[1], p.StageFractions[2],
			p.AvgLatency, p.FID)
	}
	fmt.Fprintf(w, "best two-level FID over the same budget: %.2f\n", r.BestTwoLevelFID)
}
