package stats

import (
	"math"
	"sort"
)

// Welford accumulates streaming mean and variance using Welford's
// numerically stable online algorithm. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates a new observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of observations seen.
func (w *Welford) Count() int { return w.n }

// Mean returns the sample mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance, or 0 with fewer than
// two observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// PopVariance returns the population (biased) variance.
func (w *Welford) PopVariance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// Merge combines another accumulator into this one (parallel Welford).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}

// EWMA is an exponentially weighted moving average.
// The zero value is invalid; use NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1].
// Larger alpha weights recent observations more heavily.
// It panics if alpha is outside (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMA alpha must be in (0, 1]")
	}
	return &EWMA{alpha: alpha}
}

// Add incorporates a new observation and returns the updated average.
// The first observation initializes the average directly.
func (e *EWMA) Add(x float64) float64 {
	if !e.init {
		e.value = x
		e.init = true
		return x
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one observation has been added.
func (e *EWMA) Initialized() bool { return e.init }

// Reset clears the average.
func (e *EWMA) Reset() { e.value, e.init = 0, false }

// Quantile returns the q-quantile (q in [0, 1]) of xs using linear
// interpolation between order statistics. It returns NaN for an empty
// slice. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return Min(xs)
	}
	if q >= 1 {
		return Max(xs)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Min returns the minimum of xs, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// CDF represents an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the samples. The input is copied.
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P(X <= x) under the empirical distribution.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.sorted, x)
	// Advance past equal values so At is right-continuous.
	for i < len(c.sorted) && c.sorted[i] <= x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// InverseAt returns the q-quantile of the empirical distribution.
func (c *CDF) InverseAt(q float64) float64 { return Quantile(c.sorted, q) }

// Len returns the number of samples underlying the CDF.
func (c *CDF) Len() int { return len(c.sorted) }

// Points returns (x, P(X<=x)) pairs suitable for plotting the CDF with
// at most n points, evenly spaced over the sample indices.
func (c *CDF) Points(n int) (xs, ps []float64) {
	if len(c.sorted) == 0 || n <= 0 {
		return nil, nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	xs = make([]float64, n)
	ps = make([]float64, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.sorted) - 1) / maxInt(n-1, 1)
		xs[i] = c.sorted[idx]
		ps[i] = float64(idx+1) / float64(len(c.sorted))
	}
	return xs, ps
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Histogram is a fixed-bin histogram over [lo, hi).
type Histogram struct {
	lo, hi   float64
	counts   []int
	under    int
	over     int
	total    int
	binWidth float64
}

// NewHistogram returns a histogram with bins equal-width bins over
// [lo, hi). It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: histogram needs bins > 0")
	}
	if hi <= lo {
		panic("stats: histogram needs hi > lo")
	}
	return &Histogram{lo: lo, hi: hi, counts: make([]int, bins), binWidth: (hi - lo) / float64(bins)}
}

// Add records an observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / h.binWidth)
		if i >= len(h.counts) { // guard float rounding at the upper edge
			i = len(h.counts) - 1
		}
		h.counts[i]++
	}
}

// Count returns the count in bin i.
func (h *Histogram) Count(i int) int { return h.counts[i] }

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Total returns the total number of observations including out-of-range.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the center x-value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.lo + (float64(i)+0.5)*h.binWidth
}

// Fraction returns the fraction of all observations landing in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[i]) / float64(h.total)
}
