package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGStreamIndependence(t *testing.T) {
	root := NewRNG(7)
	s1 := root.Stream("alpha")
	s2 := root.Stream("beta")
	if s1.Seed() == s2.Seed() {
		t.Fatal("distinct stream names produced identical seeds")
	}
	// Same name must reproduce the same stream regardless of how much
	// the sibling stream was consumed.
	s1.Float64()
	s1.Float64()
	again := NewRNG(7).Stream("beta")
	for i := 0; i < 10; i++ {
		if s2.Float64() != again.Float64() {
			t.Fatalf("stream %q not reproducible at draw %d", "beta", i)
		}
	}
}

func TestRNGStreamN(t *testing.T) {
	root := NewRNG(11)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		s := root.StreamN("query", i)
		if seen[s.Seed()] {
			t.Fatalf("duplicate seed for index %d", i)
		}
		seen[s.Seed()] = true
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(1)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(r.Normal(3, 2))
	}
	if math.Abs(w.Mean()-3) > 0.05 {
		t.Errorf("normal mean = %.4f, want ~3", w.Mean())
	}
	if math.Abs(w.Std()-2) > 0.05 {
		t.Errorf("normal std = %.4f, want ~2", w.Std())
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(2)
	var w Welford
	rate := 4.0
	for i := 0; i < 200000; i++ {
		w.Add(r.Exponential(rate))
	}
	if math.Abs(w.Mean()-1/rate) > 0.01 {
		t.Errorf("exponential mean = %.4f, want ~%.4f", w.Mean(), 1/rate)
	}
}

func TestExponentialPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rate <= 0")
		}
	}()
	NewRNG(3).Exponential(0)
}

func TestGammaMoments(t *testing.T) {
	r := NewRNG(4)
	shape, scale := 2.5, 1.5
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(r.Gamma(shape, scale))
	}
	wantMean := shape * scale
	wantVar := shape * scale * scale
	if math.Abs(w.Mean()-wantMean) > 0.05 {
		t.Errorf("gamma mean = %.4f, want ~%.4f", w.Mean(), wantMean)
	}
	if math.Abs(w.Variance()-wantVar) > 0.2 {
		t.Errorf("gamma var = %.4f, want ~%.4f", w.Variance(), wantVar)
	}
}

func TestGammaSmallShape(t *testing.T) {
	r := NewRNG(5)
	var w Welford
	for i := 0; i < 100000; i++ {
		x := r.Gamma(0.5, 2)
		if x < 0 {
			t.Fatal("gamma sample negative")
		}
		w.Add(x)
	}
	if math.Abs(w.Mean()-1.0) > 0.05 {
		t.Errorf("gamma(0.5,2) mean = %.4f, want ~1", w.Mean())
	}
}

func TestBetaRangeAndMean(t *testing.T) {
	r := NewRNG(6)
	a, b := 2.0, 5.0
	var w Welford
	for i := 0; i < 100000; i++ {
		x := r.Beta(a, b)
		if x < 0 || x > 1 {
			t.Fatalf("beta sample %v out of [0,1]", x)
		}
		w.Add(x)
	}
	want := a / (a + b)
	if math.Abs(w.Mean()-want) > 0.01 {
		t.Errorf("beta mean = %.4f, want ~%.4f", w.Mean(), want)
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(7)
	for _, mean := range []float64{0.5, 3, 20, 100} {
		var w Welford
		for i := 0; i < 50000; i++ {
			w.Add(float64(r.Poisson(mean)))
		}
		if math.Abs(w.Mean()-mean) > 0.05*mean+0.05 {
			t.Errorf("poisson(%v) mean = %.4f", mean, w.Mean())
		}
	}
}

func TestPoissonZero(t *testing.T) {
	r := NewRNG(8)
	if got := r.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
}

func TestBernoulliProbability(t *testing.T) {
	r := NewRNG(9)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("bernoulli rate = %.4f, want ~0.3", p)
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(10)
	cfg := &quick.Config{MaxCount: 200}
	f := func(loRaw, spanRaw uint16) bool {
		lo := float64(loRaw) / 100
		hi := lo + float64(spanRaw)/100 + 0.01
		x := r.Uniform(lo, hi)
		return x >= lo && x < hi
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestNormalVec(t *testing.T) {
	r := NewRNG(11)
	v := r.NormalVec(nil, 8, 1, 0)
	if len(v) != 8 {
		t.Fatalf("len = %d, want 8", len(v))
	}
	for _, x := range v {
		if x != 1 {
			t.Errorf("sigma=0 sample = %v, want exactly mu", x)
		}
	}
	dst := make([]float64, 4)
	got := r.NormalVec(dst, 0, 0, 1)
	if &got[0] != &dst[0] {
		t.Error("NormalVec did not reuse provided destination")
	}
}
