package stats

import "fmt"

// MomentAccumulator maintains the streaming mean vector and
// co-moment matrix of a stream of d-dimensional observations — the
// multivariate generalization of Welford. It stores only the upper
// triangle of the co-moment matrix (sums of (x_i - mean_i)(x_j -
// mean_j)), so one accumulator costs O(d^2) memory regardless of how
// many observations it has absorbed, and finalizing the sample
// covariance is O(d^2) instead of the O(n·d^2) re-walk a batch
// computation pays.
//
// Accumulators merge with Chan et al.'s pairwise update, so per-shard
// accumulators (e.g. per-timeline-bucket) can be combined exactly.
type MomentAccumulator struct {
	dim  int
	n    int
	mean []float64
	// comoment holds the upper triangle (i <= j) of the co-moment
	// matrix row by row: index (i, j) lives at i*dim - i*(i-1)/2 + j-i.
	comoment []float64
	// dx is scratch for Add, kept to avoid per-observation allocation.
	dx []float64
}

// NewMomentAccumulator returns an empty accumulator for d-dimensional
// observations. It panics if dim is not positive.
func NewMomentAccumulator(dim int) *MomentAccumulator {
	if dim <= 0 {
		panic("stats: MomentAccumulator dim must be positive")
	}
	return &MomentAccumulator{
		dim:      dim,
		mean:     make([]float64, dim),
		comoment: make([]float64, dim*(dim+1)/2),
		dx:       make([]float64, dim),
	}
}

// Dim returns the observation dimensionality.
func (m *MomentAccumulator) Dim() int { return m.dim }

// Count returns the number of observations absorbed.
func (m *MomentAccumulator) Count() int { return m.n }

// Add absorbs one observation. It panics on a dimension mismatch.
func (m *MomentAccumulator) Add(x []float64) {
	if len(x) != m.dim {
		panic(fmt.Sprintf("stats: MomentAccumulator.Add dim %d, want %d", len(x), m.dim))
	}
	m.n++
	inv := 1 / float64(m.n)
	for i, v := range x {
		m.dx[i] = v - m.mean[i]
		m.mean[i] += m.dx[i] * inv
	}
	k := 0
	for i := 0; i < m.dim; i++ {
		di := m.dx[i]
		for j := i; j < m.dim; j++ {
			m.comoment[k] += di * (x[j] - m.mean[j])
			k++
		}
	}
}

// Merge combines another accumulator into this one (Chan's parallel
// update). Both accumulators must share a dimensionality; o is left
// unchanged.
func (m *MomentAccumulator) Merge(o *MomentAccumulator) error {
	if o.dim != m.dim {
		return fmt.Errorf("stats: MomentAccumulator merge dim %d vs %d", o.dim, m.dim)
	}
	if o.n == 0 {
		return nil
	}
	if m.n == 0 {
		m.n = o.n
		copy(m.mean, o.mean)
		copy(m.comoment, o.comoment)
		return nil
	}
	na, nb := float64(m.n), float64(o.n)
	n := na + nb
	for i := range m.dx {
		m.dx[i] = o.mean[i] - m.mean[i]
	}
	w := na * nb / n
	k := 0
	for i := 0; i < m.dim; i++ {
		di := m.dx[i]
		for j := i; j < m.dim; j++ {
			m.comoment[k] += o.comoment[k] + di*m.dx[j]*w
			k++
		}
	}
	for i := range m.mean {
		m.mean[i] += m.dx[i] * nb / n
	}
	m.n += o.n
	return nil
}

// Mean returns a copy of the running mean vector.
func (m *MomentAccumulator) Mean() []float64 {
	return append([]float64(nil), m.mean...)
}

// MeanInto copies the running mean into dst (allocated when nil).
func (m *MomentAccumulator) MeanInto(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.dim)
	}
	copy(dst, m.mean)
	return dst
}

// CovarianceInto writes the unbiased (n-1) sample covariance into dst
// as a dim×dim row-major matrix, allocating when dst is nil. It
// returns an error with fewer than two observations.
func (m *MomentAccumulator) CovarianceInto(dst []float64) ([]float64, error) {
	if m.n < 2 {
		return nil, fmt.Errorf("stats: need >= 2 samples for covariance, got %d", m.n)
	}
	if dst == nil {
		dst = make([]float64, m.dim*m.dim)
	}
	inv := 1 / float64(m.n-1)
	k := 0
	for i := 0; i < m.dim; i++ {
		for j := i; j < m.dim; j++ {
			v := m.comoment[k] * inv
			dst[i*m.dim+j] = v
			dst[j*m.dim+i] = v
			k++
		}
	}
	return dst, nil
}

// Reset returns the accumulator to the empty state.
func (m *MomentAccumulator) Reset() {
	m.n = 0
	for i := range m.mean {
		m.mean[i] = 0
	}
	for i := range m.comoment {
		m.comoment[i] = 0
	}
}

// Clone returns an independent deep copy.
func (m *MomentAccumulator) Clone() *MomentAccumulator {
	c := NewMomentAccumulator(m.dim)
	c.n = m.n
	copy(c.mean, m.mean)
	copy(c.comoment, m.comoment)
	return c
}
