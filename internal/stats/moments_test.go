package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWelfordMatchesNaive(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 100, -7}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	v /= float64(len(xs) - 1)
	if math.Abs(w.Mean()-mean) > 1e-12 {
		t.Errorf("mean = %v, want %v", w.Mean(), mean)
	}
	if math.Abs(w.Variance()-v) > 1e-9 {
		t.Errorf("var = %v, want %v", w.Variance(), v)
	}
}

func TestWelfordMergeEquivalence(t *testing.T) {
	f := func(a, b []float64) bool {
		var all, left, right Welford
		for _, x := range a {
			clamped := math.Mod(x, 1000)
			if math.IsNaN(clamped) {
				clamped = 0
			}
			all.Add(clamped)
			left.Add(clamped)
		}
		for _, x := range b {
			clamped := math.Mod(x, 1000)
			if math.IsNaN(clamped) {
				clamped = 0
			}
			all.Add(clamped)
			right.Add(clamped)
		}
		left.Merge(right)
		if left.Count() != all.Count() {
			return false
		}
		if all.Count() == 0 {
			return true
		}
		return math.Abs(left.Mean()-all.Mean()) < 1e-6 &&
			math.Abs(left.PopVariance()-all.PopVariance()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.Std() != 0 {
		t.Error("zero-value Welford should report zeros")
	}
}

func TestEWMAFirstObservation(t *testing.T) {
	e := NewEWMA(0.3)
	if e.Initialized() {
		t.Error("fresh EWMA reports initialized")
	}
	if got := e.Add(10); got != 10 {
		t.Errorf("first Add = %v, want 10", got)
	}
	got := e.Add(20)
	want := 0.3*20 + 0.7*10
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("second Add = %v, want %v", got, want)
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.2)
	for i := 0; i < 200; i++ {
		e.Add(5)
	}
	if math.Abs(e.Value()-5) > 1e-9 {
		t.Errorf("EWMA of constant = %v, want 5", e.Value())
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	for _, alpha := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha=%v: expected panic", alpha)
				}
			}()
			NewEWMA(alpha)
		}()
	}
}

func TestEWMAReset(t *testing.T) {
	e := NewEWMA(0.5)
	e.Add(3)
	e.Reset()
	if e.Initialized() || e.Value() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%.2f) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(empty) should be NaN")
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.25); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("interpolated quantile = %v, want 2.5", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{2, -1, 7}
	if Mean(xs) != 8.0/3 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty-slice aggregates should be NaN")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("CDF.At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCDFMonotone(t *testing.T) {
	r := NewRNG(99)
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = r.Normal(0, 1)
	}
	c := NewCDF(samples)
	prev := -1.0
	for x := -4.0; x <= 4.0; x += 0.05 {
		p := c.At(x)
		if p < prev-1e-12 {
			t.Fatalf("CDF not monotone at x=%v: %v < %v", x, p, prev)
		}
		prev = p
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5})
	xs, ps := c.Points(3)
	if len(xs) != 3 || len(ps) != 3 {
		t.Fatalf("Points lengths = %d, %d", len(xs), len(ps))
	}
	if xs[0] != 1 || xs[2] != 5 {
		t.Errorf("Points endpoints = %v", xs)
	}
	if ps[2] != 1 {
		t.Errorf("final CDF point = %v, want 1", ps[2])
	}
	if x, p := (&CDF{}).Points(3); x != nil || p != nil {
		t.Error("empty CDF Points should be nil")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.999, 10, 42} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Count(0) != 2 { // 0 and 1.9
		t.Errorf("bin 0 count = %d, want 2", h.Count(0))
	}
	if h.Count(1) != 1 { // 2
		t.Errorf("bin 1 count = %d, want 1", h.Count(1))
	}
	if h.Count(4) != 1 { // 9.999
		t.Errorf("bin 4 count = %d, want 1", h.Count(4))
	}
	if h.under != 1 || h.over != 2 {
		t.Errorf("under/over = %d/%d, want 1/2", h.under, h.over)
	}
	if h.BinCenter(0) != 1 {
		t.Errorf("BinCenter(0) = %v, want 1", h.BinCenter(0))
	}
	if got := h.Fraction(0); math.Abs(got-2.0/7) > 1e-12 {
		t.Errorf("Fraction(0) = %v", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
