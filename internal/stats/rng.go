// Package stats provides deterministic random number generation,
// probability distributions, and streaming statistics used throughout
// the DiffServe simulator.
//
// All stochastic components in this repository draw from seeded RNG
// streams created by this package, so every experiment is reproducible
// bit-for-bit for a given root seed.
package stats

import (
	"math"
	"math/rand"
)

// FNV-1a constants (identical to hash/fnv's 64-bit variant). The hash
// is inlined so stream-seed derivation allocates nothing on the hot
// image-generation path.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(v >> (8 * i)))
		h *= fnvPrime64
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// RNG is a deterministic random number generator supporting named
// sub-stream derivation. Deriving a child stream with a stable name
// decouples the randomness consumed by independent components: adding
// draws to one component does not perturb another.
type RNG struct {
	seed uint64
	src  *rand.Rand
}

// NewRNG returns a new RNG seeded with the given root seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{seed: seed, src: rand.New(rand.NewSource(int64(seed)))}
}

// Stream derives an independent child RNG identified by name.
// The child's seed is a hash of the parent seed and the name, so the
// same (seed, name) pair always yields the same stream.
func (r *RNG) Stream(name string) *RNG {
	return NewRNG(r.StreamSeed(name))
}

// StreamN derives an independent child RNG identified by name and index,
// convenient for per-query or per-worker streams.
func (r *RNG) StreamN(name string, n int) *RNG {
	return NewRNG(StreamNSeedFrom(r.seed, name, n))
}

// StreamSeed returns the seed Stream(name) would give its child,
// without allocating the child.
func (r *RNG) StreamSeed(name string) uint64 {
	return fnvString(fnvUint64(fnvOffset64, r.seed), name)
}

// StreamSeed2 returns StreamSeed(prefix+name) without materializing
// the concatenated string.
func (r *RNG) StreamSeed2(prefix, name string) uint64 {
	return fnvString(fnvString(fnvUint64(fnvOffset64, r.seed), prefix), name)
}

// StreamNSeedFrom returns the seed that an RNG seeded with seed would
// derive via StreamN(name, n).
func StreamNSeedFrom(seed uint64, name string, n int) uint64 {
	return fnvUint64(fnvString(fnvUint64(fnvOffset64, seed), name), uint64(n))
}

// Reseed resets the RNG in place to the given seed, reusing its
// source. The state afterwards is identical to NewRNG(seed)'s.
func (r *RNG) Reseed(seed uint64) {
	r.seed = seed
	r.src.Seed(int64(seed))
}

// Seed returns the seed this RNG was created with.
func (r *RNG) Seed() uint64 { return r.seed }

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Intn returns a uniform sample in [0, n).
func (r *RNG) Intn(n int) int { return r.src.Intn(n) }

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Normal returns a sample from the normal distribution N(mu, sigma^2).
func (r *RNG) Normal(mu, sigma float64) float64 {
	return mu + sigma*r.src.NormFloat64()
}

// StdNormal returns a sample from N(0, 1).
func (r *RNG) StdNormal() float64 { return r.src.NormFloat64() }

// Exponential returns a sample from the exponential distribution with
// the given rate (mean 1/rate). It panics if rate <= 0.
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exponential requires rate > 0")
	}
	return r.src.ExpFloat64() / rate
}

// Uniform returns a sample from the uniform distribution on [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.src.Float64() < p }

// Gamma returns a sample from the Gamma distribution with the given
// shape and scale parameters, using the Marsaglia–Tsang method.
// It panics if shape <= 0 or scale <= 0.
func (r *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("stats: Gamma requires shape > 0 and scale > 0")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
		u := r.src.Float64()
		for u == 0 {
			u = r.src.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.src.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.src.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Beta returns a sample from the Beta(a, b) distribution.
// It panics if a <= 0 or b <= 0.
func (r *RNG) Beta(a, b float64) float64 {
	x := r.Gamma(a, 1)
	y := r.Gamma(b, 1)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// Poisson returns a sample from the Poisson distribution with the given
// mean. For large means it uses a normal approximation. It panics if
// mean < 0.
func (r *RNG) Poisson(mean float64) int {
	if mean < 0 {
		panic("stats: Poisson requires mean >= 0")
	}
	if mean == 0 {
		return 0
	}
	if mean > 64 {
		// Normal approximation with continuity correction.
		k := int(math.Round(r.Normal(mean, math.Sqrt(mean))))
		if k < 0 {
			k = 0
		}
		return k
	}
	// Knuth's method.
	limit := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.src.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// NormalVec fills dst with independent N(mu, sigma^2) samples and
// returns it. If dst is nil, a new slice of length n is allocated.
func (r *RNG) NormalVec(dst []float64, n int, mu, sigma float64) []float64 {
	if dst == nil {
		dst = make([]float64, n)
	}
	for i := range dst {
		dst[i] = mu + sigma*r.src.NormFloat64()
	}
	return dst
}
