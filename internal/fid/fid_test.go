package fid

import (
	"math"
	"testing"

	"diffserve/internal/imagespace"
	"diffserve/internal/linalg"
	"diffserve/internal/stats"
)

func TestFrechetIdenticalIsZero(t *testing.T) {
	mu := []float64{1, 2, 3}
	s := linalg.Diag([]float64{1, 2, 3})
	got, err := Frechet(mu, s, mu, s)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("FID(same, same) = %v, want 0", got)
	}
}

func TestFrechetMeanShiftOnly(t *testing.T) {
	s := linalg.Identity(4)
	got, err := Frechet([]float64{0, 0, 0, 0}, s, []float64{3, 4, 0, 0}, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-25) > 1e-9 {
		t.Errorf("FID = %v, want 25", got)
	}
}

func TestFrechetCovarianceOnly(t *testing.T) {
	mu := []float64{0, 0}
	s1 := linalg.Diag([]float64{1, 1})
	s2 := linalg.Diag([]float64{4, 9})
	// Diagonal case: sum (sqrt(a)-sqrt(b))^2 = (1-2)^2 + (1-3)^2 = 5.
	got, err := Frechet(mu, s1, mu, s2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-5) > 1e-8 {
		t.Errorf("FID = %v, want 5", got)
	}
}

func TestFrechetSymmetry(t *testing.T) {
	rng := stats.NewRNG(5)
	dim := 6
	mu1 := rng.NormalVec(nil, dim, 0, 1)
	mu2 := rng.NormalVec(nil, dim, 1, 1)
	s1 := randomPSD(rng, dim)
	s2 := randomPSD(rng, dim)
	a, err := Frechet(mu1, s1, mu2, s2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Frechet(mu2, s2, mu1, s1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-7*(1+a) {
		t.Errorf("FID asymmetric: %v vs %v", a, b)
	}
	if a < 0 {
		t.Errorf("FID negative: %v", a)
	}
}

func randomPSD(rng *stats.RNG, n int) *linalg.Matrix {
	a := linalg.NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = rng.Normal(0, 1)
	}
	return a.Transpose().Mul(a).Symmetrize()
}

func TestFrechetShapeErrors(t *testing.T) {
	s := linalg.Identity(2)
	if _, err := Frechet([]float64{0, 0}, s, []float64{0}, s); err == nil {
		t.Error("expected mean-dim error")
	}
	if _, err := Frechet([]float64{0, 0, 0}, s, []float64{0, 0, 0}, s); err == nil {
		t.Error("expected covariance shape error")
	}
}

func TestFrechetDiagonalMatchesExactForDiagonal(t *testing.T) {
	mu1 := []float64{0, 1}
	mu2 := []float64{2, 0}
	s1 := linalg.Diag([]float64{1, 2})
	s2 := linalg.Diag([]float64{3, 1})
	exact, err := Frechet(mu1, s1, mu2, s2)
	if err != nil {
		t.Fatal(err)
	}
	diag, err := FrechetDiagonal(mu1, s1, mu2, s2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-diag) > 1e-8 {
		t.Errorf("exact %v vs diagonal %v should match for diagonal covariances", exact, diag)
	}
}

func TestFrechetDiagonalLowerBoundsExact(t *testing.T) {
	// For correlated covariances the diagonal approximation typically
	// differs; both must remain non-negative.
	rng := stats.NewRNG(6)
	for trial := 0; trial < 10; trial++ {
		dim := 4
		mu1 := rng.NormalVec(nil, dim, 0, 1)
		mu2 := rng.NormalVec(nil, dim, 0.5, 1)
		s1 := randomPSD(rng, dim)
		s2 := randomPSD(rng, dim)
		exact, err := Frechet(mu1, s1, mu2, s2)
		if err != nil {
			t.Fatal(err)
		}
		diag, err := FrechetDiagonal(mu1, s1, mu2, s2)
		if err != nil {
			t.Fatal(err)
		}
		if exact < -1e-9 || diag < -1e-9 {
			t.Fatalf("negative FID: exact %v diag %v", exact, diag)
		}
	}
}

func TestBetweenEmpiricalRecoversPopulation(t *testing.T) {
	// Two samples of the same Gaussian should have small FID; samples
	// of different Gaussians should have FID near the analytic value.
	rng := stats.NewRNG(7)
	dim := 8
	n := 4000
	sample := func(mu float64, stream string) [][]float64 {
		r := rng.Stream(stream)
		out := make([][]float64, n)
		for i := range out {
			out[i] = r.NormalVec(nil, dim, mu, 1)
		}
		return out
	}
	same, err := Between(sample(0, "a"), sample(0, "b"))
	if err != nil {
		t.Fatal(err)
	}
	if same > 0.3 {
		t.Errorf("FID between same-distribution samples = %v, want near 0", same)
	}
	shifted, err := Between(sample(1, "c"), sample(0, "d"))
	if err != nil {
		t.Fatal(err)
	}
	want := float64(dim) // ||1-vector||^2 = dim
	if math.Abs(shifted-want) > 0.8 {
		t.Errorf("FID between shifted samples = %v, want ~%v", shifted, want)
	}
}

func TestReferenceScore(t *testing.T) {
	rng := stats.NewRNG(8)
	dim := 4
	ref := ExactReference(dim)
	if len(ref.Mu) != dim || ref.Sigma.Rows != dim {
		t.Fatal("ExactReference wrong shape")
	}
	gen := make([][]float64, 2000)
	for i := range gen {
		gen[i] = rng.NormalVec(nil, dim, 0, 1)
	}
	score, err := ref.Score(gen)
	if err != nil {
		t.Fatal(err)
	}
	if score > 0.2 {
		t.Errorf("N(0,I) sample vs exact reference FID = %v, want near 0", score)
	}
	diagScore, err := ref.ScoreDiagonal(gen)
	if err != nil {
		t.Fatal(err)
	}
	if diagScore > 0.2 {
		t.Errorf("diagonal score = %v, want near 0", diagScore)
	}
}

func TestNewReferenceMatchesBetween(t *testing.T) {
	rng := stats.NewRNG(9)
	dim := 3
	mk := func(stream string) [][]float64 {
		r := rng.Stream(stream)
		out := make([][]float64, 500)
		for i := range out {
			out[i] = r.NormalVec(nil, dim, 0, 1)
		}
		return out
	}
	real, gen := mk("real"), mk("gen")
	ref, err := NewReference(real)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ref.Score(gen)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Between(gen, real)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("Reference.Score %v != Between %v", a, b)
	}
}

func TestFIDTriangleLikeSanity(t *testing.T) {
	// Moving a distribution farther from the reference must not
	// decrease FID (monotone in pure mean shift).
	ref := ExactReference(4)
	s := linalg.Identity(4)
	prev := -1.0
	for shift := 0.0; shift <= 5; shift += 0.5 {
		mu := []float64{shift, 0, 0, 0}
		v, err := Frechet(mu, s, ref.Mu, ref.Sigma)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Fatalf("FID not monotone in mean shift at %v: %v < %v", shift, v, prev)
		}
		prev = v
	}
}

var benchSink float64

func BenchmarkFrechetExact16(b *testing.B) {
	rng := stats.NewRNG(10)
	dim := 16
	mu1 := rng.NormalVec(nil, dim, 0, 1)
	mu2 := rng.NormalVec(nil, dim, 0.5, 1)
	s1 := randomPSD(rng, dim)
	s2 := randomPSD(rng, dim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := Frechet(mu1, s1, mu2, s2)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = v
	}
}

func BenchmarkFrechetDiagonal16(b *testing.B) {
	rng := stats.NewRNG(11)
	dim := 16
	mu1 := rng.NormalVec(nil, dim, 0, 1)
	mu2 := rng.NormalVec(nil, dim, 0.5, 1)
	s1 := randomPSD(rng, dim)
	s2 := randomPSD(rng, dim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := FrechetDiagonal(mu1, s1, mu2, s2)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = v
	}
}

// Guard against accidental import cycles breaking moments reuse.
var _ = imagespace.Moments
