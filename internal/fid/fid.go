// Package fid computes the Fréchet Inception Distance between image
// feature distributions, exactly (full covariance) via symmetric
// eigendecomposition, with a fast diagonal approximation for ablation.
//
// The FID between two Gaussians N(mu1, S1) and N(mu2, S2) is
//
//	||mu1 - mu2||^2 + tr(S1 + S2 - 2 (S1 S2)^{1/2}).
//
// Following the paper, system response quality is reported as the FID
// between the set of served images and the ground-truth image set of
// the evaluation dataset.
package fid

import (
	"fmt"
	"math"

	"diffserve/internal/imagespace"
	"diffserve/internal/linalg"
	"diffserve/internal/stats"
)

// Frechet computes the exact Fréchet distance between two Gaussians
// specified by their means and covariance matrices.
func Frechet(mu1 []float64, s1 *linalg.Matrix, mu2 []float64, s2 *linalg.Matrix) (float64, error) {
	if len(mu1) != len(mu2) {
		return 0, fmt.Errorf("fid: mean dims %d vs %d", len(mu1), len(mu2))
	}
	if s1.Rows != len(mu1) || s2.Rows != len(mu2) || s1.Rows != s1.Cols || s2.Rows != s2.Cols {
		return 0, fmt.Errorf("fid: covariance shape mismatch")
	}
	d2 := 0.0
	for i := range mu1 {
		d := mu1[i] - mu2[i]
		d2 += d * d
	}
	cross, err := linalg.TraceSqrtProduct(s1, s2, 1e-6)
	if err != nil {
		return 0, fmt.Errorf("fid: %w", err)
	}
	v := d2 + s1.Trace() + s2.Trace() - 2*cross
	// Floating-point noise can push a zero distance slightly negative.
	if v < 0 && v > -1e-8 {
		v = 0
	}
	return v, nil
}

// FrechetDiagonal computes the Fréchet distance treating both
// covariances as diagonal — the fast approximation benchmarked against
// the exact computation in the ablation suite.
func FrechetDiagonal(mu1 []float64, s1 *linalg.Matrix, mu2 []float64, s2 *linalg.Matrix) (float64, error) {
	if len(mu1) != len(mu2) {
		return 0, fmt.Errorf("fid: mean dims %d vs %d", len(mu1), len(mu2))
	}
	v := 0.0
	for i := range mu1 {
		d := mu1[i] - mu2[i]
		a := s1.At(i, i)
		b := s2.At(i, i)
		if a < 0 {
			a = 0
		}
		if b < 0 {
			b = 0
		}
		v += d*d + a + b - 2*math.Sqrt(a*b)
	}
	if v < 0 && v > -1e-8 {
		v = 0
	}
	return v, nil
}

// Between computes the exact FID between two sets of feature vectors.
// Each set must contain at least dim+1 samples for a well-conditioned
// covariance; fewer samples yield a PSD-clamped estimate.
func Between(generated, reference [][]float64) (float64, error) {
	mu1, s1, err := imagespace.Moments(generated)
	if err != nil {
		return 0, err
	}
	mu2, s2, err := imagespace.Moments(reference)
	if err != nil {
		return 0, err
	}
	return Frechet(mu1, s1, mu2, s2)
}

// Reference holds precomputed moments of a reference (real image) set,
// so repeated FID evaluations against the same dataset avoid
// recomputing them.
type Reference struct {
	Mu    []float64
	Sigma *linalg.Matrix
}

// NewReference precomputes moments for the reference set.
func NewReference(features [][]float64) (*Reference, error) {
	mu, sigma, err := imagespace.Moments(features)
	if err != nil {
		return nil, err
	}
	return &Reference{Mu: mu, Sigma: sigma}, nil
}

// ExactReference returns the analytic reference for the imagespace
// model: the real-image population N(0, I_dim).
func ExactReference(dim int) *Reference {
	return &Reference{Mu: make([]float64, dim), Sigma: linalg.Identity(dim)}
}

// Score computes the exact FID of a generated set against the
// reference.
func (r *Reference) Score(generated [][]float64) (float64, error) {
	mu, sigma, err := imagespace.Moments(generated)
	if err != nil {
		return 0, err
	}
	return Frechet(mu, sigma, r.Mu, r.Sigma)
}

// AccumulatorMoments finalizes a streaming accumulator into the
// (mean, covariance) pair Frechet consumes, without materializing the
// underlying feature vectors.
func AccumulatorMoments(acc *stats.MomentAccumulator) ([]float64, *linalg.Matrix, error) {
	if acc == nil || acc.Count() < 2 {
		n := 0
		if acc != nil {
			n = acc.Count()
		}
		return nil, nil, fmt.Errorf("fid: need >= 2 samples for moments, got %d", n)
	}
	sigma := linalg.NewMatrix(acc.Dim(), acc.Dim())
	if _, err := acc.CovarianceInto(sigma.Data); err != nil {
		return nil, nil, err
	}
	return acc.Mean(), sigma, nil
}

// NewReferenceFromAccumulator builds a reference from streamed
// moments, skipping the [][]float64 materialization NewReference pays.
func NewReferenceFromAccumulator(acc *stats.MomentAccumulator) (*Reference, error) {
	mu, sigma, err := AccumulatorMoments(acc)
	if err != nil {
		return nil, err
	}
	return &Reference{Mu: mu, Sigma: sigma}, nil
}

// ScoreMoments computes the exact FID of a generated set summarized by
// a streaming moment accumulator — the O(d^2)/O(d^3) finalization path
// the serving-system metrics pipeline uses instead of re-walking every
// served feature vector.
func (r *Reference) ScoreMoments(acc *stats.MomentAccumulator) (float64, error) {
	mu, sigma, err := AccumulatorMoments(acc)
	if err != nil {
		return 0, err
	}
	return Frechet(mu, sigma, r.Mu, r.Sigma)
}

// ScoreDiagonal computes the diagonal-approximation FID of a generated
// set against the reference.
func (r *Reference) ScoreDiagonal(generated [][]float64) (float64, error) {
	mu, sigma, err := imagespace.Moments(generated)
	if err != nil {
		return 0, err
	}
	return FrechetDiagonal(mu, sigma, r.Mu, r.Sigma)
}
