// Package trace provides query-arrival workloads for the DiffServe
// experiments: constant and stepped synthetic traces, an Azure
// Functions-like diurnal trace generator, the paper's shape-preserving
// min/max scaling transformation, Poisson arrival synthesis, and the
// artifact's trace_{A}to{B}qps.txt file format.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"diffserve/internal/stats"
)

// Trace is a piecewise-constant query-rate series: Rates[i] is the
// demand in queries per second during [i*Interval, (i+1)*Interval).
type Trace struct {
	// Interval is the duration of each rate step in seconds.
	Interval float64
	// Rates holds the demand (QPS) for each step.
	Rates []float64
}

// New constructs a trace, validating its fields.
func New(interval float64, rates []float64) (*Trace, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("trace: interval must be positive, got %v", interval)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("trace: need at least one rate step")
	}
	for i, r := range rates {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("trace: invalid rate %v at step %d", r, i)
		}
	}
	return &Trace{Interval: interval, Rates: append([]float64(nil), rates...)}, nil
}

// Static returns a constant-rate trace of the given duration.
func Static(qps, duration, interval float64) (*Trace, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("trace: duration must be positive")
	}
	n := int(math.Ceil(duration / interval))
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = qps
	}
	return New(interval, rates)
}

// Steps returns a trace that holds each of the given rates for
// stepDuration seconds in turn.
func Steps(rates []float64, stepDuration, interval float64) (*Trace, error) {
	if stepDuration < interval {
		return nil, fmt.Errorf("trace: stepDuration must be >= interval")
	}
	per := int(math.Round(stepDuration / interval))
	out := make([]float64, 0, per*len(rates))
	for _, r := range rates {
		for i := 0; i < per; i++ {
			out = append(out, r)
		}
	}
	return New(interval, out)
}

// AzureLike generates a diurnal, bursty demand shape resembling the
// Microsoft Azure Functions trace used in the paper, compressed into
// the given duration: a dominant single-cycle diurnal swing, a weaker
// second harmonic, lognormal-ish burst noise, and occasional spikes.
// The returned trace is a *shape* in [0, 1]; scale it with ScaleTo to
// match system capacity, as the paper does.
func AzureLike(rng *stats.RNG, duration, interval float64) (*Trace, error) {
	if duration <= 0 || interval <= 0 {
		return nil, fmt.Errorf("trace: duration and interval must be positive")
	}
	n := int(math.Ceil(duration / interval))
	r := rng.Stream("azure")
	rates := make([]float64, n)
	phase := r.Uniform(0, 2*math.Pi)
	for i := range rates {
		t := float64(i) / float64(n)
		diurnal := 0.5 - 0.5*math.Cos(2*math.Pi*t)     // one main peak
		harmonic := 0.12 * math.Sin(4*math.Pi*t+phase) // secondary wave
		noise := 0.06 * r.Normal(0, 1)                 // measurement jitter
		burst := 0.0                                   // occasional spikes
		if r.Bernoulli(0.02) {
			burst = r.Uniform(0.05, 0.25)
		}
		v := diurnal + harmonic + noise + burst
		if v < 0 {
			v = 0
		}
		rates[i] = v
	}
	return New(interval, rates)
}

// ScaleTo applies the paper's shape-preserving transformation: an
// affine map of the rate series onto [minQPS, maxQPS]. A constant
// trace maps to maxQPS. It returns a new trace.
func (t *Trace) ScaleTo(minQPS, maxQPS float64) (*Trace, error) {
	if minQPS < 0 || maxQPS < minQPS {
		return nil, fmt.Errorf("trace: need 0 <= min <= max, got [%v, %v]", minQPS, maxQPS)
	}
	lo, hi := t.Rates[0], t.Rates[0]
	for _, r := range t.Rates {
		lo = math.Min(lo, r)
		hi = math.Max(hi, r)
	}
	out := make([]float64, len(t.Rates))
	if hi == lo {
		for i := range out {
			out[i] = maxQPS
		}
		return New(t.Interval, out)
	}
	for i, r := range t.Rates {
		out[i] = minQPS + (r-lo)/(hi-lo)*(maxQPS-minQPS)
	}
	return New(t.Interval, out)
}

// Duration returns the total trace duration in seconds.
func (t *Trace) Duration() float64 { return float64(len(t.Rates)) * t.Interval }

// RateAt returns the demand at absolute time ts (seconds); times past
// the end return the final rate, negative times the first.
func (t *Trace) RateAt(ts float64) float64 {
	if ts < 0 {
		return t.Rates[0]
	}
	i := int(ts / t.Interval)
	if i >= len(t.Rates) {
		return t.Rates[len(t.Rates)-1]
	}
	return t.Rates[i]
}

// MeanRate returns the time-averaged demand.
func (t *Trace) MeanRate() float64 { return stats.Mean(t.Rates) }

// PeakRate returns the maximum demand.
func (t *Trace) PeakRate() float64 { return stats.Max(t.Rates) }

// MinRate returns the minimum demand.
func (t *Trace) MinRate() float64 { return stats.Min(t.Rates) }

// ExpectedQueries returns the expected number of arrivals over the
// whole trace.
func (t *Trace) ExpectedQueries() float64 {
	sum := 0.0
	for _, r := range t.Rates {
		sum += r * t.Interval
	}
	return sum
}

// Name returns the artifact-style trace name, e.g. "trace_4to32qps".
func (t *Trace) Name() string {
	return fmt.Sprintf("trace_%dto%dqps", int(math.Round(t.MinRate())), int(math.Round(t.PeakRate())))
}

// Arrivals synthesizes Poisson arrival timestamps over the trace: in
// each interval, arrivals form a Poisson process at that interval's
// rate. The returned times are sorted and lie in [0, Duration).
func (t *Trace) Arrivals(rng *stats.RNG) []float64 {
	r := rng.Stream("arrivals")
	var out []float64
	for i, rate := range t.Rates {
		if rate <= 0 {
			continue
		}
		start := float64(i) * t.Interval
		// Exponential inter-arrivals within the interval.
		at := start + r.Exponential(rate)
		for at < start+t.Interval {
			out = append(out, at)
			at += r.Exponential(rate)
		}
	}
	sort.Float64s(out)
	return out
}

// Write serializes the trace in the artifact's text format: a header
// line "# interval <seconds>" followed by one QPS value per line.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# interval %g\n", t.Interval); err != nil {
		return err
	}
	for _, r := range t.Rates {
		if _, err := fmt.Fprintf(bw, "%g\n", r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace written by Write. Files without the interval
// header default to 1-second intervals (the artifact's convention).
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	interval := 1.0
	var rates []float64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(strings.TrimPrefix(text, "#"))
			if len(fields) == 2 && fields[0] == "interval" {
				v, err := strconv.ParseFloat(fields[1], 64)
				if err != nil || v <= 0 {
					return nil, fmt.Errorf("trace: bad interval header at line %d", line)
				}
				interval = v
			}
			continue
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad rate %q at line %d", text, line)
		}
		rates = append(rates, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return New(interval, rates)
}
