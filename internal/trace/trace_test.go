package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"diffserve/internal/stats"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, []float64{1}); err == nil {
		t.Error("zero interval should fail")
	}
	if _, err := New(1, nil); err == nil {
		t.Error("empty rates should fail")
	}
	if _, err := New(1, []float64{-1}); err == nil {
		t.Error("negative rate should fail")
	}
	if _, err := New(1, []float64{math.NaN()}); err == nil {
		t.Error("NaN rate should fail")
	}
	tr, err := New(1, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Input slice must be copied.
	in := []float64{5}
	tr2, _ := New(1, in)
	in[0] = 99
	if tr2.Rates[0] == 99 {
		t.Error("New aliases caller's slice")
	}
	_ = tr
}

func TestStatic(t *testing.T) {
	tr, err := Static(10, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Duration() != 60 {
		t.Errorf("duration = %v", tr.Duration())
	}
	if tr.MeanRate() != 10 || tr.PeakRate() != 10 || tr.MinRate() != 10 {
		t.Error("static trace rates wrong")
	}
	if _, err := Static(1, 0, 1); err == nil {
		t.Error("zero duration should fail")
	}
}

func TestSteps(t *testing.T) {
	tr, err := Steps([]float64{5, 10, 15}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Duration() != 30 {
		t.Errorf("duration = %v", tr.Duration())
	}
	if tr.RateAt(0) != 5 || tr.RateAt(12) != 10 || tr.RateAt(25) != 15 {
		t.Error("step rates wrong")
	}
	if _, err := Steps([]float64{1}, 0.5, 1); err == nil {
		t.Error("stepDuration < interval should fail")
	}
}

func TestRateAtBounds(t *testing.T) {
	tr, _ := New(1, []float64{2, 4, 6})
	if tr.RateAt(-1) != 2 {
		t.Error("negative time should return first rate")
	}
	if tr.RateAt(100) != 6 {
		t.Error("time past end should return last rate")
	}
	if tr.RateAt(1.5) != 4 {
		t.Error("mid-interval lookup wrong")
	}
}

func TestScaleToRange(t *testing.T) {
	tr, _ := New(1, []float64{0, 5, 10})
	s, err := tr.ScaleTo(4, 32)
	if err != nil {
		t.Fatal(err)
	}
	if s.MinRate() != 4 || s.PeakRate() != 32 {
		t.Errorf("scaled range = [%v, %v], want [4, 32]", s.MinRate(), s.PeakRate())
	}
	// Midpoint maps to midpoint: shape preservation.
	if math.Abs(s.Rates[1]-18) > 1e-12 {
		t.Errorf("midpoint = %v, want 18", s.Rates[1])
	}
	if _, err := tr.ScaleTo(10, 5); err == nil {
		t.Error("min > max should fail")
	}
	if _, err := tr.ScaleTo(-1, 5); err == nil {
		t.Error("negative min should fail")
	}
}

func TestScaleToConstantTrace(t *testing.T) {
	tr, _ := Static(7, 10, 1)
	s, err := tr.ScaleTo(4, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range s.Rates {
		if r != 32 {
			t.Fatalf("constant trace should scale to max, got %v", r)
		}
	}
}

func TestScaleToShapePreservationProperty(t *testing.T) {
	// Affine scaling preserves the ordering of rates.
	rng := stats.NewRNG(1)
	tr, err := AzureLike(rng, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := tr.ScaleTo(4, 32)
	if err != nil {
		t.Fatal(err)
	}
	f := func(aRaw, bRaw uint16) bool {
		a := int(aRaw) % len(tr.Rates)
		b := int(bRaw) % len(tr.Rates)
		if tr.Rates[a] < tr.Rates[b] {
			return s.Rates[a] <= s.Rates[b]+1e-9
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestAzureLikeShape(t *testing.T) {
	rng := stats.NewRNG(2)
	tr, err := AzureLike(rng, 360, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Rates) != 360 {
		t.Fatalf("len = %d", len(tr.Rates))
	}
	// The peak should land mid-trace (diurnal single cycle).
	peakIdx := 0
	for i, r := range tr.Rates {
		if r > tr.Rates[peakIdx] {
			peakIdx = i
		}
	}
	if peakIdx < 90 || peakIdx > 270 {
		t.Errorf("peak at index %d, want mid-trace", peakIdx)
	}
	// Ends lower than the middle.
	mid := stats.Mean(tr.Rates[150:210])
	edges := (stats.Mean(tr.Rates[:30]) + stats.Mean(tr.Rates[330:])) / 2
	if mid <= edges {
		t.Errorf("diurnal shape missing: mid %v <= edges %v", mid, edges)
	}
	if _, err := AzureLike(rng, 0, 1); err == nil {
		t.Error("zero duration should fail")
	}
}

func TestAzureLikeDeterministic(t *testing.T) {
	a, _ := AzureLike(stats.NewRNG(3), 100, 1)
	b, _ := AzureLike(stats.NewRNG(3), 100, 1)
	for i := range a.Rates {
		if a.Rates[i] != b.Rates[i] {
			t.Fatal("AzureLike not deterministic for same seed")
		}
	}
}

func TestArrivalsRateRecovery(t *testing.T) {
	rng := stats.NewRNG(4)
	tr, _ := Static(20, 100, 1)
	arr := tr.Arrivals(rng)
	got := float64(len(arr)) / tr.Duration()
	if math.Abs(got-20) > 1.5 {
		t.Errorf("arrival rate = %.2f, want ~20", got)
	}
	// Sorted and in range.
	for i, a := range arr {
		if a < 0 || a >= tr.Duration() {
			t.Fatalf("arrival %v out of range", a)
		}
		if i > 0 && arr[i] < arr[i-1] {
			t.Fatal("arrivals not sorted")
		}
	}
}

func TestArrivalsTrackRateChanges(t *testing.T) {
	rng := stats.NewRNG(5)
	tr, _ := Steps([]float64{5, 50}, 60, 1)
	arr := tr.Arrivals(rng)
	var lo, hi int
	for _, a := range arr {
		if a < 60 {
			lo++
		} else {
			hi++
		}
	}
	if float64(hi) < 7*float64(lo) {
		t.Errorf("arrival counts lo=%d hi=%d should scale ~10x", lo, hi)
	}
}

func TestArrivalsZeroRate(t *testing.T) {
	rng := stats.NewRNG(6)
	tr, _ := New(1, []float64{0, 0, 0})
	if arr := tr.Arrivals(rng); len(arr) != 0 {
		t.Errorf("zero-rate trace produced %d arrivals", len(arr))
	}
}

func TestExpectedQueries(t *testing.T) {
	tr, _ := New(2, []float64{3, 5})
	if got := tr.ExpectedQueries(); got != 16 {
		t.Errorf("ExpectedQueries = %v, want 16", got)
	}
}

func TestName(t *testing.T) {
	tr, _ := New(1, []float64{4, 18, 32})
	if got := tr.Name(); got != "trace_4to32qps" {
		t.Errorf("Name = %q", got)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr, _ := New(0.5, []float64{1.5, 2.25, 0})
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Interval != tr.Interval {
		t.Errorf("interval = %v, want %v", back.Interval, tr.Interval)
	}
	if len(back.Rates) != len(tr.Rates) {
		t.Fatalf("len = %d", len(back.Rates))
	}
	for i := range tr.Rates {
		if back.Rates[i] != tr.Rates[i] {
			t.Errorf("rate %d = %v, want %v", i, back.Rates[i], tr.Rates[i])
		}
	}
}

func TestReadDefaultsAndErrors(t *testing.T) {
	// No header: 1-second intervals (artifact convention).
	tr, err := Read(strings.NewReader("4\n8\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Interval != 1 || len(tr.Rates) != 2 {
		t.Error("headerless parse wrong")
	}
	// Blank lines and comments skipped.
	tr, err = Read(strings.NewReader("# comment\n\n5\n"))
	if err != nil || len(tr.Rates) != 1 {
		t.Errorf("comment handling wrong: %v", err)
	}
	if _, err := Read(strings.NewReader("abc\n")); err == nil {
		t.Error("garbage rate should fail")
	}
	if _, err := Read(strings.NewReader("# interval x\n1\n")); err == nil {
		t.Error("bad interval header should fail")
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty file should fail")
	}
}
