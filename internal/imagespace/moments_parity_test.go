package imagespace

import (
	"math"
	"testing"

	"diffserve/internal/stats"
)

// randomFeatures draws n feature vectors with a non-trivial mean and
// correlation structure.
func randomFeatures(rng *stats.RNG, n, dim int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		shared := rng.Normal(0.5, 2)
		for j := range v {
			v[j] = shared*0.3 + rng.Normal(float64(j)*0.1, 1+0.05*float64(j))
		}
		out[i] = v
	}
	return out
}

// TestMomentAccumulatorMatchesBatchMoments checks the streaming
// accumulator against the batch two-pass Moments computation to 1e-9
// on random data.
func TestMomentAccumulatorMatchesBatchMoments(t *testing.T) {
	rng := stats.NewRNG(1234)
	for _, n := range []int{2, 3, 17, 500} {
		feats := randomFeatures(rng, n, 16)
		mu, sigma, err := Moments(feats)
		if err != nil {
			t.Fatal(err)
		}
		acc := stats.NewMomentAccumulator(16)
		for _, f := range feats {
			acc.Add(f)
		}
		if acc.Count() != n {
			t.Fatalf("n=%d: count %d", n, acc.Count())
		}
		sMu := acc.Mean()
		cov, err := acc.CovarianceInto(nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range mu {
			if math.Abs(mu[i]-sMu[i]) > 1e-9 {
				t.Errorf("n=%d: mean[%d] batch %v streaming %v", n, i, mu[i], sMu[i])
			}
			for j := range mu {
				if d := math.Abs(sigma.At(i, j) - cov[i*16+j]); d > 1e-9 {
					t.Errorf("n=%d: cov[%d,%d] differs by %v", n, i, j, d)
				}
			}
		}
	}
}

// TestMomentAccumulatorMergeOrderInvariant checks Chan-style merging:
// any split of the stream, merged in any order, agrees with a single
// sequential accumulation to 1e-9.
func TestMomentAccumulatorMergeOrderInvariant(t *testing.T) {
	rng := stats.NewRNG(99)
	const n, dim = 301, 8
	feats := randomFeatures(rng, n, dim)

	whole := stats.NewMomentAccumulator(dim)
	for _, f := range feats {
		whole.Add(f)
	}
	wantMu := whole.Mean()
	wantCov, err := whole.CovarianceInto(nil)
	if err != nil {
		t.Fatal(err)
	}

	// Three shards of uneven sizes, merged in two different orders.
	splits := [][2]int{{0, 7}, {7, 160}, {160, n}}
	mkShard := func(k int) *stats.MomentAccumulator {
		a := stats.NewMomentAccumulator(dim)
		for _, f := range feats[splits[k][0]:splits[k][1]] {
			a.Add(f)
		}
		return a
	}
	for _, order := range [][3]int{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}} {
		m := stats.NewMomentAccumulator(dim)
		for _, k := range order {
			if err := m.Merge(mkShard(k)); err != nil {
				t.Fatal(err)
			}
		}
		if m.Count() != n {
			t.Fatalf("order %v: count %d", order, m.Count())
		}
		mu := m.Mean()
		cov, err := m.CovarianceInto(nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < dim; i++ {
			if math.Abs(mu[i]-wantMu[i]) > 1e-9 {
				t.Errorf("order %v: mean[%d] off by %v", order, i, mu[i]-wantMu[i])
			}
			for j := 0; j < dim; j++ {
				if d := math.Abs(cov[i*dim+j] - wantCov[i*dim+j]); d > 1e-9 {
					t.Errorf("order %v: cov[%d,%d] off by %v", order, i, j, d)
				}
			}
		}
	}

	// Merging into an empty accumulator copies exactly.
	empty := stats.NewMomentAccumulator(dim)
	if err := empty.Merge(whole); err != nil {
		t.Fatal(err)
	}
	if empty.Count() != whole.Count() {
		t.Fatal("empty-merge count mismatch")
	}

	// Dimension mismatch is rejected.
	if err := whole.Merge(stats.NewMomentAccumulator(dim + 1)); err == nil {
		t.Fatal("merge with wrong dim should fail")
	}
}

// TestGenerateDeterministicCacheByteIdentical checks that the
// memoized deterministic generation returns byte-identical images to
// the underlying uncached generation path, call after call.
func TestGenerateDeterministicCacheByteIdentical(t *testing.T) {
	rng := stats.NewRNG(7)
	space, err := NewSpace(DefaultSpaceConfig(), rng.Stream("space"))
	if err != nil {
		t.Fatal(err)
	}
	p := GenParams{ArtifactBase: 0.4, ArtifactSlope: 5, ArtifactNoise: 0.3, DirSkew: 0.2, DirAxis: 1, Contraction: 0.9, NoiseStd: 0.4}
	for id := 0; id < 64; id++ {
		q := space.SampleQuery(id)
		// The uncached reference: the documented stream derivation.
		want := space.Generate(q, p, rng.Stream("space").Stream("gen:variantA").StreamN("q", q.ID))
		// Fresh space with the same seed, exercising the memo twice.
		got1 := space.GenerateDeterministic(q, "variantA", p)
		got2 := space.GenerateDeterministic(q, "variantA", p)
		if got1.Artifact != want.Artifact || got2.Artifact != got1.Artifact {
			t.Fatalf("id %d: artifact mismatch: %v %v %v", id, want.Artifact, got1.Artifact, got2.Artifact)
		}
		for i := range want.Features {
			if got1.Features[i] != want.Features[i] {
				t.Fatalf("id %d: feature[%d] cached %v uncached %v", id, i, got1.Features[i], want.Features[i])
			}
			if got2.Features[i] != got1.Features[i] {
				t.Fatalf("id %d: cache replay diverged at feature[%d]", id, i)
			}
		}
		if got1.Variant != "variantA" {
			t.Fatalf("variant label %q", got1.Variant)
		}
	}
}

// TestGenerateDeterministicDistinctParams checks that two variants
// sharing a name but not parameters do not collide in the cache.
func TestGenerateDeterministicDistinctParams(t *testing.T) {
	rng := stats.NewRNG(8)
	space, err := NewSpace(DefaultSpaceConfig(), rng.Stream("space"))
	if err != nil {
		t.Fatal(err)
	}
	q := space.SampleQuery(3)
	pa := GenParams{ArtifactBase: 0.1, ArtifactSlope: 2, Contraction: 1, NoiseStd: 0.1}
	pb := pa
	pb.ArtifactBase = 3
	a := space.GenerateDeterministic(q, "same", pa)
	b := space.GenerateDeterministic(q, "same", pb)
	if a.Artifact == b.Artifact {
		t.Fatal("distinct params must not share a cache entry")
	}
}

// TestGenerateWithReuseDoesNotCorruptCache checks that the reuse
// path's feature mutation does not leak into the memoized fresh
// generation.
func TestGenerateWithReuseDoesNotCorruptCache(t *testing.T) {
	rng := stats.NewRNG(9)
	space, err := NewSpace(DefaultSpaceConfig(), rng.Stream("space"))
	if err != nil {
		t.Fatal(err)
	}
	light := GenParams{ArtifactBase: 0.3, ArtifactSlope: 6, ArtifactNoise: 0.2, DirSkew: 0.6, DirAxis: 2, Contraction: 0.85, NoiseStd: 0.35}
	heavy := GenParams{ArtifactBase: 0.6, ArtifactSlope: 1.5, ArtifactNoise: 0.2, DirSkew: 0.1, DirAxis: 1, Contraction: 0.95, NoiseStd: 0.3}
	q := space.SampleQuery(11)
	fresh1 := space.GenerateDeterministic(q, "heavy", heavy)
	before := append([]float64(nil), fresh1.Features...)
	li := space.GenerateDeterministic(q, "light", light)
	reused := space.GenerateWithReuse(q, "heavy", heavy, li, light)
	fresh2 := space.GenerateDeterministic(q, "heavy", heavy)
	for i := range before {
		if fresh2.Features[i] != before[i] {
			t.Fatalf("reuse mutated the cached fresh image at feature[%d]", i)
		}
	}
	if reused.Artifact < fresh1.Artifact {
		t.Fatal("reuse leak should not reduce the artifact magnitude")
	}
}
