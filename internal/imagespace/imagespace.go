// Package imagespace provides the generative feature-space model that
// substitutes for real diffusion-model inference in this reproduction.
//
// Real images are modeled as points drawn from the standard Gaussian
// N(0, I_K) in a K-dimensional Inception-like feature space. A diffusion
// model variant generates, for a query q with latent difficulty d(q), a
// feature vector
//
//	y = c·r(q) + a(q)·u + eps,   eps ~ N(0, tau^2 I)
//
// where r(q) ~ N(0, I) is the query's ground-truth image, c <= 1 is a
// contraction factor (mode collapse: the model under-disperses relative
// to the real distribution), u is the variant's unit artifact direction
// inside a low-dimensional artifact subspace, and
//
//	a(q) = max(0, base + slope·d(q) + noise)
//
// is the per-image artifact magnitude — the ground-truth inverse quality
// of the generation. Lightweight variants have a steeper slope (they
// degrade faster on hard prompts) while heavyweight variants have a
// flatter slope but a non-zero base (even a 50-step model does not match
// the real distribution exactly).
//
// This model reproduces the phenomena the DiffServe paper's evaluation
// rests on:
//
//  1. FID(all-heavy) < FID(all-light): the heavy variant's mean artifact
//     magnitude is lower.
//  2. 20–40% of queries are "easy": on low-difficulty queries the light
//     variant's artifact magnitude is at or below the heavy variant's.
//  3. The U-shape of system FID versus deferral fraction: routing by a
//     quality-aware discriminator keeps only the low-artifact light
//     images, so the served mixture has a smaller mean artifact shift
//     than all-heavy serving, and FID dips below the all-heavy level.
//     Random routing keeps a representative sample of light images and
//     merely interpolates between the endpoints.
package imagespace

import (
	"fmt"
	"math"
	"sync"

	"diffserve/internal/linalg"
	"diffserve/internal/stats"
)

// DefaultDim is the default feature-space dimensionality.
const DefaultDim = 16

// DefaultArtifactDims is the default dimensionality of the artifact
// subspace (the leading dimensions of the feature space).
const DefaultArtifactDims = 4

// SpaceConfig parameterizes a feature space.
type SpaceConfig struct {
	// Dim is the total feature dimensionality.
	Dim int
	// ArtifactDims is the size of the artifact subspace (leading dims).
	ArtifactDims int
	// DifficultyAlpha and DifficultyBeta parameterize the Beta
	// distribution of per-query latent difficulty.
	DifficultyAlpha, DifficultyBeta float64
}

// DefaultSpaceConfig returns the configuration used throughout the
// paper reproduction: a 16-dim feature space with a 4-dim artifact
// subspace and Beta(2, 4) query difficulty.
func DefaultSpaceConfig() SpaceConfig {
	return SpaceConfig{
		Dim:             DefaultDim,
		ArtifactDims:    DefaultArtifactDims,
		DifficultyAlpha: 2,
		DifficultyBeta:  4,
	}
}

// Space is a query/image universe: a feature space plus the difficulty
// distribution of the query population.
type Space struct {
	cfg SpaceConfig
	rng *stats.RNG

	// Deterministic generation and query sampling are memoized:
	// replaying the same query population through different serving
	// policies or thresholds never regenerates an image or re-samples
	// a query. All cache state is guarded by mu so concurrent
	// simulation runs can share one Space.
	mu      sync.Mutex
	images  map[genKey]Image
	queries map[int]*Query
	dirs    map[dirKey][]float64
	genRNG  *stats.RNG // scratch RNG reseeded per cache miss
}

// genKey identifies a deterministic generation: GenParams is part of
// the key so the cache stays correct even if two variants share a name
// with different parameters.
type genKey struct {
	variant string
	id      int
	params  GenParams
}

// dirKey identifies a memoized artifact direction.
type dirKey struct {
	skew float64
	axis int
}

// maxCacheEntries bounds each memo map so a long-lived process (e.g.
// a cluster worker serving an unbounded query stream) cannot grow
// without limit: past the cap, results are computed but not stored.
const maxCacheEntries = 1 << 20

// NewSpace constructs a Space. The RNG seeds all query sampling; use
// distinct streams for distinct datasets.
func NewSpace(cfg SpaceConfig, rng *stats.RNG) (*Space, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("imagespace: Dim must be positive, got %d", cfg.Dim)
	}
	if cfg.ArtifactDims <= 0 || cfg.ArtifactDims > cfg.Dim {
		return nil, fmt.Errorf("imagespace: ArtifactDims must be in [1, Dim], got %d", cfg.ArtifactDims)
	}
	if cfg.DifficultyAlpha <= 0 || cfg.DifficultyBeta <= 0 {
		return nil, fmt.Errorf("imagespace: difficulty Beta parameters must be positive")
	}
	return &Space{
		cfg:     cfg,
		rng:     rng,
		images:  make(map[genKey]Image),
		queries: make(map[int]*Query),
		dirs:    make(map[dirKey][]float64),
		genRNG:  stats.NewRNG(0),
	}, nil
}

// Config returns the space configuration.
func (s *Space) Config() SpaceConfig { return s.cfg }

// Dim returns the feature dimensionality.
func (s *Space) Dim() int { return s.cfg.Dim }

// Query is a text prompt in the serving system. Its latent difficulty
// and ground-truth image are hidden from the serving system; only the
// generated images (and discriminator scores of them) are observable.
type Query struct {
	ID         int
	Difficulty float64   // latent difficulty in [0, 1]
	Truth      []float64 // ground-truth image feature vector, ~ N(0, I)
}

// SampleQuery draws the query with the given ID from the population.
// Queries are deterministic per ID and memoized, so replaying the
// same population across runs returns shared *Query values — treat
// them as read-only.
func (s *Space) SampleQuery(id int) *Query {
	s.mu.Lock()
	if q, ok := s.queries[id]; ok {
		s.mu.Unlock()
		return q
	}
	// Identical to s.rng.StreamN("query", id) without allocating the
	// intermediate RNG.
	s.genRNG.Reseed(stats.StreamNSeedFrom(s.rng.Seed(), "query", id))
	q := &Query{
		ID:         id,
		Difficulty: s.genRNG.Beta(s.cfg.DifficultyAlpha, s.cfg.DifficultyBeta),
		Truth:      s.genRNG.NormalVec(nil, s.cfg.Dim, 0, 1),
	}
	if len(s.queries) < maxCacheEntries {
		s.queries[id] = q
	}
	s.mu.Unlock()
	return q
}

// SampleQueries draws n queries with IDs [base, base+n).
func (s *Space) SampleQueries(base, n int) []*Query {
	qs := make([]*Query, n)
	for i := range qs {
		qs[i] = s.SampleQuery(base + i)
	}
	return qs
}

// RealImage returns the ground-truth ("real") image features for a
// query, i.e. the dataset image paired with the prompt.
func (s *Space) RealImage(q *Query) []float64 {
	out := make([]float64, len(q.Truth))
	copy(out, q.Truth)
	return out
}

// GenParams describe how a diffusion-model variant maps a query to
// generated image features.
type GenParams struct {
	// ArtifactBase is the artifact magnitude on the easiest query.
	ArtifactBase float64
	// ArtifactSlope scales artifact magnitude with query difficulty.
	ArtifactSlope float64
	// ArtifactNoise is the std of per-image artifact randomness.
	ArtifactNoise float64
	// DirSkew in [0, 1] rotates the variant's artifact direction away
	// from the shared axis within the artifact subspace. Variants with
	// different skews have partially disjoint failure modes.
	DirSkew float64
	// DirAxis selects the secondary artifact axis (1..ArtifactDims-1)
	// toward which DirSkew rotates. Variants with different axes fail
	// in more orthogonal directions.
	DirAxis int
	// Contraction scales the ground-truth component (mode collapse);
	// 1 means perfectly faithful dispersion.
	Contraction float64
	// NoiseStd is the isotropic generation-noise std.
	NoiseStd float64
}

// Validate reports whether the parameters are usable.
func (p GenParams) Validate() error {
	if p.ArtifactBase < 0 || p.ArtifactSlope < 0 || p.ArtifactNoise < 0 {
		return fmt.Errorf("imagespace: artifact parameters must be non-negative")
	}
	if p.DirSkew < 0 || p.DirSkew > 1 {
		return fmt.Errorf("imagespace: DirSkew must be in [0, 1], got %v", p.DirSkew)
	}
	if p.Contraction <= 0 || p.Contraction > 1.5 {
		return fmt.Errorf("imagespace: Contraction must be in (0, 1.5], got %v", p.Contraction)
	}
	if p.NoiseStd < 0 {
		return fmt.Errorf("imagespace: NoiseStd must be non-negative")
	}
	return nil
}

// MeanArtifact returns the population-mean artifact magnitude under the
// space's difficulty distribution (ignoring the max(0, ·) clamp, which
// is negligible for the calibrated parameter ranges).
func (s *Space) MeanArtifact(p GenParams) float64 {
	meanDiff := s.cfg.DifficultyAlpha / (s.cfg.DifficultyAlpha + s.cfg.DifficultyBeta)
	return p.ArtifactBase + p.ArtifactSlope*meanDiff
}

// Image is a generated image: its observable features plus the hidden
// ground-truth artifact magnitude used by the evaluation harness (never
// by the serving system itself).
type Image struct {
	QueryID  int
	Features []float64
	// Artifact is the ground-truth artifact magnitude (inverse quality).
	Artifact float64
	// Variant records which model variant generated the image.
	Variant string
}

// artifactDir returns the variant's unit artifact direction embedded in
// the full feature space: a rotation of the shared first artifact axis
// by angle skew*pi/2 toward the variant's secondary axis. Variants with
// small skews fail in nearly the same direction; larger skews and
// different secondary axes make failure modes more orthogonal.
func (s *Space) artifactDir(skew float64, axis int) []float64 {
	dir := make([]float64, s.cfg.Dim)
	if s.cfg.ArtifactDims == 1 || skew == 0 {
		dir[0] = 1
		return dir
	}
	if axis < 1 || axis >= s.cfg.ArtifactDims {
		axis = 1 + ((axis%(s.cfg.ArtifactDims-1))+(s.cfg.ArtifactDims-1))%(s.cfg.ArtifactDims-1)
	}
	theta := skew * math.Pi / 2
	dir[0] = math.Cos(theta)
	dir[axis] = math.Sin(theta)
	return dir
}

// Generate produces an image for query q under the given generation
// parameters. rng should be a per-(query, variant) stream so that the
// same query generated twice by the same variant yields the same image.
func (s *Space) Generate(q *Query, p GenParams, rng *stats.RNG) Image {
	return s.generate(q, p, rng, s.artifactDir(p.DirSkew, p.DirAxis))
}

// generate is Generate with the artifact direction supplied by the
// caller (so cached directions skip the per-image allocation).
func (s *Space) generate(q *Query, p GenParams, rng *stats.RNG, dir []float64) Image {
	a := p.ArtifactBase + p.ArtifactSlope*q.Difficulty + rng.Normal(0, p.ArtifactNoise)
	if a < 0 {
		a = 0
	}
	feat := make([]float64, s.cfg.Dim)
	for i := 0; i < s.cfg.Dim; i++ {
		feat[i] = p.Contraction*q.Truth[i] + a*dir[i] + rng.Normal(0, p.NoiseStd)
	}
	return Image{QueryID: q.ID, Features: feat, Artifact: a}
}

// GenerateDeterministic is Generate with a stream derived from the
// query ID and a variant label, guaranteeing reproducibility when the
// same query is re-generated (e.g. replayed through a different
// serving policy).
//
// Results are memoized per (variant, query, params): replaying the
// same query population across approaches, thresholds, or sweep
// points returns the cached image, byte-identical to a fresh
// generation. The returned Image's Features slice is shared with the
// cache — treat it as read-only.
func (s *Space) GenerateDeterministic(q *Query, variant string, p GenParams) Image {
	key := genKey{variant: variant, id: q.ID, params: p}
	s.mu.Lock()
	if img, ok := s.images[key]; ok {
		s.mu.Unlock()
		return img
	}
	// The stream seed is derived without allocating intermediate
	// strings or RNGs: this hash chain is exactly
	// rng.Stream("gen:"+variant).StreamN("q", q.ID).
	seed := stats.StreamNSeedFrom(s.rng.StreamSeed2("gen:", variant), "q", q.ID)
	s.genRNG.Reseed(seed)
	img := s.generate(q, p, s.genRNG, s.artifactDirLocked(p.DirSkew, p.DirAxis))
	img.Variant = variant
	if len(s.images) < maxCacheEntries {
		s.images[key] = img
	}
	s.mu.Unlock()
	return img
}

// artifactDirLocked memoizes artifactDir per (skew, axis). Callers
// must hold s.mu.
func (s *Space) artifactDirLocked(skew float64, axis int) []float64 {
	key := dirKey{skew: skew, axis: axis}
	if dir, ok := s.dirs[key]; ok {
		return dir
	}
	dir := s.artifactDir(skew, axis)
	s.dirs[key] = dir
	return dir
}

// GenerateWithReuse produces the heavy variant's image when it resumes
// denoising from the light variant's output instead of fresh noise —
// the paper's §5 "reuse opportunities" extension. A fraction of the
// light image's artifact magnitude leaks into the refined output; the
// leak grows steeply with the directional mismatch between the two
// variants' artifact modes, which is why the paper finds SD-Turbo
// outputs reusable under SDv1.5 while SDXS reuse degrades FID
// (18.55 -> 19.75 on MS-COCO): compatibility between models is
// critical.
func (s *Space) GenerateWithReuse(q *Query, heavyName string, heavy GenParams, light Image, lightParams GenParams) Image {
	img := s.GenerateDeterministic(q, heavyName, heavy)
	// The deterministic image's features are shared with the memo
	// cache; copy before mutating them with the reuse leak.
	img.Features = append([]float64(nil), img.Features...)
	// Directional compatibility between the variants' artifact modes.
	dH := s.artifactDir(heavy.DirSkew, heavy.DirAxis)
	dL := s.artifactDir(lightParams.DirSkew, lightParams.DirAxis)
	rho := linalg.Dot(dH, dL)
	mismatch := 1 - rho
	leak := 10 * mismatch * mismatch * mismatch
	if leak > 0.5 {
		leak = 0.5
	}
	extra := leak * light.Artifact
	img.Artifact += extra
	for i := range dL {
		img.Features[i] += extra * dL[i]
	}
	img.Variant = heavyName + "+reuse"
	return img
}

// Moments computes the empirical mean vector and covariance matrix of
// a set of feature vectors. It returns an error when fewer than two
// vectors are provided or dimensions disagree.
func Moments(features [][]float64) (mu []float64, sigma *linalg.Matrix, err error) {
	if len(features) < 2 {
		return nil, nil, fmt.Errorf("imagespace: need >= 2 samples for moments, got %d", len(features))
	}
	dim := len(features[0])
	mu = make([]float64, dim)
	for _, f := range features {
		if len(f) != dim {
			return nil, nil, fmt.Errorf("imagespace: inconsistent feature dims %d vs %d", len(f), dim)
		}
		for i, v := range f {
			mu[i] += v
		}
	}
	n := float64(len(features))
	for i := range mu {
		mu[i] /= n
	}
	sigma = linalg.NewMatrix(dim, dim)
	for _, f := range features {
		for i := 0; i < dim; i++ {
			di := f[i] - mu[i]
			for j := i; j < dim; j++ {
				sigma.Data[i*dim+j] += di * (f[j] - mu[j])
			}
		}
	}
	for i := 0; i < dim; i++ {
		for j := i; j < dim; j++ {
			v := sigma.Data[i*dim+j] / (n - 1)
			sigma.Set(i, j, v)
			sigma.Set(j, i, v)
		}
	}
	return mu, sigma, nil
}
