package imagespace

import (
	"math"
	"testing"
	"testing/quick"

	"diffserve/internal/stats"
)

func newTestSpace(t *testing.T) *Space {
	t.Helper()
	s, err := NewSpace(DefaultSpaceConfig(), stats.NewRNG(1).Stream("space"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSpaceValidation(t *testing.T) {
	rng := stats.NewRNG(1)
	cases := []SpaceConfig{
		{Dim: 0, ArtifactDims: 1, DifficultyAlpha: 2, DifficultyBeta: 4},
		{Dim: 8, ArtifactDims: 0, DifficultyAlpha: 2, DifficultyBeta: 4},
		{Dim: 8, ArtifactDims: 9, DifficultyAlpha: 2, DifficultyBeta: 4},
		{Dim: 8, ArtifactDims: 4, DifficultyAlpha: 0, DifficultyBeta: 4},
		{Dim: 8, ArtifactDims: 4, DifficultyAlpha: 2, DifficultyBeta: -1},
	}
	for i, cfg := range cases {
		if _, err := NewSpace(cfg, rng); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, cfg)
		}
	}
	if _, err := NewSpace(DefaultSpaceConfig(), rng); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestSampleQueryDeterministic(t *testing.T) {
	s := newTestSpace(t)
	q1 := s.SampleQuery(42)
	q2 := s.SampleQuery(42)
	if q1.Difficulty != q2.Difficulty {
		t.Error("same query ID yields different difficulty")
	}
	for i := range q1.Truth {
		if q1.Truth[i] != q2.Truth[i] {
			t.Fatalf("same query ID yields different truth at dim %d", i)
		}
	}
	q3 := s.SampleQuery(43)
	if q3.Difficulty == q1.Difficulty {
		t.Error("distinct query IDs unexpectedly share difficulty")
	}
}

func TestSampleQueriesPopulation(t *testing.T) {
	s := newTestSpace(t)
	qs := s.SampleQueries(0, 20000)
	var wDiff Welford2
	var truthVar stats.Welford
	for _, q := range qs {
		if q.Difficulty < 0 || q.Difficulty > 1 {
			t.Fatalf("difficulty %v out of [0,1]", q.Difficulty)
		}
		wDiff.Add(q.Difficulty)
		for _, v := range q.Truth {
			truthVar.Add(v)
		}
	}
	// Beta(2,4) has mean 1/3.
	if math.Abs(wDiff.Mean()-1.0/3) > 0.01 {
		t.Errorf("difficulty mean = %.4f, want ~0.333", wDiff.Mean())
	}
	if math.Abs(truthVar.Mean()) > 0.01 {
		t.Errorf("truth mean = %.4f, want ~0", truthVar.Mean())
	}
	if math.Abs(truthVar.Variance()-1) > 0.02 {
		t.Errorf("truth var = %.4f, want ~1", truthVar.Variance())
	}
}

// Welford2 is a tiny local alias to avoid importing stats twice under
// different names in examples.
type Welford2 = stats.Welford

func TestGenParamsValidate(t *testing.T) {
	good := GenParams{ArtifactBase: 1, ArtifactSlope: 2, ArtifactNoise: 0.1, DirSkew: 0.2, DirAxis: 1, Contraction: 0.9, NoiseStd: 0.1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []GenParams{
		{ArtifactBase: -1, Contraction: 0.9},
		{ArtifactSlope: -1, Contraction: 0.9},
		{ArtifactNoise: -1, Contraction: 0.9},
		{DirSkew: 1.5, Contraction: 0.9},
		{DirSkew: -0.1, Contraction: 0.9},
		{Contraction: 0},
		{Contraction: 2},
		{Contraction: 0.9, NoiseStd: -0.1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, p)
		}
	}
}

func TestGenerateArtifactGrowsWithDifficulty(t *testing.T) {
	s := newTestSpace(t)
	p := GenParams{ArtifactBase: 1, ArtifactSlope: 5, ArtifactNoise: 0, DirSkew: 0, Contraction: 1, NoiseStd: 0}
	rng := stats.NewRNG(2)
	easy := &Query{ID: 1, Difficulty: 0.1, Truth: make([]float64, s.Dim())}
	hard := &Query{ID: 2, Difficulty: 0.9, Truth: make([]float64, s.Dim())}
	ie := s.Generate(easy, p, rng.Stream("a"))
	ih := s.Generate(hard, p, rng.Stream("b"))
	if ie.Artifact >= ih.Artifact {
		t.Errorf("artifact should grow with difficulty: easy %.3f vs hard %.3f", ie.Artifact, ih.Artifact)
	}
	if math.Abs(ie.Artifact-1.5) > 1e-9 {
		t.Errorf("noise-free artifact = %v, want 1.5", ie.Artifact)
	}
}

func TestGenerateArtifactNonNegative(t *testing.T) {
	s := newTestSpace(t)
	p := GenParams{ArtifactBase: 0.01, ArtifactSlope: 0, ArtifactNoise: 5, DirSkew: 0, Contraction: 1, NoiseStd: 0}
	rng := stats.NewRNG(3)
	q := s.SampleQuery(0)
	for i := 0; i < 1000; i++ {
		img := s.Generate(q, p, rng.StreamN("g", i))
		if img.Artifact < 0 {
			t.Fatal("artifact went negative")
		}
	}
}

func TestGenerateDeterministicReproducible(t *testing.T) {
	s := newTestSpace(t)
	p := GenParams{ArtifactBase: 1, ArtifactSlope: 2, ArtifactNoise: 0.3, DirSkew: 0.2, DirAxis: 1, Contraction: 0.9, NoiseStd: 0.2}
	q := s.SampleQuery(7)
	a := s.GenerateDeterministic(q, "m", p)
	b := s.GenerateDeterministic(q, "m", p)
	if a.Artifact != b.Artifact {
		t.Error("replayed generation differs in artifact")
	}
	for i := range a.Features {
		if a.Features[i] != b.Features[i] {
			t.Fatalf("replayed generation differs at dim %d", i)
		}
	}
	if a.Variant != "m" {
		t.Errorf("Variant = %q, want m", a.Variant)
	}
	c := s.GenerateDeterministic(q, "other", p)
	same := true
	for i := range a.Features {
		if a.Features[i] != c.Features[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different variant labels produced identical generations")
	}
}

func TestArtifactShiftLandsOnArtifactDims(t *testing.T) {
	s := newTestSpace(t)
	p := GenParams{ArtifactBase: 4, ArtifactSlope: 0, ArtifactNoise: 0, DirSkew: 0, Contraction: 1, NoiseStd: 0}
	q := &Query{ID: 0, Difficulty: 0.5, Truth: make([]float64, s.Dim())}
	img := s.Generate(q, p, stats.NewRNG(4))
	if math.Abs(img.Features[0]-4) > 1e-9 {
		t.Errorf("artifact shift on dim 0 = %v, want 4", img.Features[0])
	}
	for i := 1; i < s.Dim(); i++ {
		if img.Features[i] != 0 {
			t.Errorf("dim %d = %v, want 0 (skew 0)", i, img.Features[i])
		}
	}
}

func TestArtifactDirUnitNormProperty(t *testing.T) {
	s := newTestSpace(t)
	f := func(skewRaw uint8, axis int8) bool {
		skew := float64(skewRaw) / 255
		dir := s.artifactDir(skew, int(axis))
		norm := 0.0
		for _, v := range dir {
			norm += v * v
		}
		return math.Abs(norm-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestArtifactDirStaysInSubspace(t *testing.T) {
	s := newTestSpace(t)
	for _, skew := range []float64{0, 0.3, 0.9, 1} {
		for axis := -2; axis < 8; axis++ {
			dir := s.artifactDir(skew, axis)
			for i := s.Config().ArtifactDims; i < s.Dim(); i++ {
				if dir[i] != 0 {
					t.Fatalf("skew %v axis %d leaks outside artifact subspace at dim %d", skew, axis, i)
				}
			}
		}
	}
}

func TestMeanArtifact(t *testing.T) {
	s := newTestSpace(t)
	p := GenParams{ArtifactBase: 2, ArtifactSlope: 3, Contraction: 1}
	// Beta(2,4) mean is 1/3.
	want := 2 + 3.0/3
	if got := s.MeanArtifact(p); math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanArtifact = %v, want %v", got, want)
	}
}

func TestMomentsKnown(t *testing.T) {
	feats := [][]float64{{0, 0}, {2, 2}, {0, 2}, {2, 0}}
	mu, sigma, err := Moments(feats)
	if err != nil {
		t.Fatal(err)
	}
	if mu[0] != 1 || mu[1] != 1 {
		t.Errorf("mean = %v, want [1 1]", mu)
	}
	// Each coordinate: values {0,2,0,2} → sample var 4/3.
	if math.Abs(sigma.At(0, 0)-4.0/3) > 1e-12 || math.Abs(sigma.At(1, 1)-4.0/3) > 1e-12 {
		t.Errorf("diag = %v, %v, want 4/3", sigma.At(0, 0), sigma.At(1, 1))
	}
	if math.Abs(sigma.At(0, 1)) > 1e-12 {
		t.Errorf("off-diag = %v, want 0", sigma.At(0, 1))
	}
}

func TestMomentsErrors(t *testing.T) {
	if _, _, err := Moments(nil); err == nil {
		t.Error("expected error for empty input")
	}
	if _, _, err := Moments([][]float64{{1}}); err == nil {
		t.Error("expected error for single sample")
	}
	if _, _, err := Moments([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("expected error for ragged input")
	}
}

func TestRealImageIsCopy(t *testing.T) {
	s := newTestSpace(t)
	q := s.SampleQuery(0)
	img := s.RealImage(q)
	img[0] = 999
	if q.Truth[0] == 999 {
		t.Error("RealImage aliases query truth")
	}
}
